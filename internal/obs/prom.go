package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// Prometheus text exposition (format 0.0.4) for the registry. Metric
// names follow the registry's labeling convention — a plain name, or
// "name{key=value,key=value}" — and are regrouped here into proper
// families: one stable # HELP/# TYPE block per family, every series of
// the family under it, label values escaped per the exposition rules.
// Histograms expand into cumulative _bucket{le="…"} series plus _sum and
// _count, so the endpoint scrapes cleanly into any Prometheus server.

// promHelp holds operator-supplied HELP strings, keyed by family name.
// It is separate from Registry so the zero-dependency instrument types
// stay untouched.
var promHelp = struct {
	sync.Mutex
	m map[string]string
}{m: make(map[string]string)}

// SetMetricHelp registers the # HELP text for a metric family (the base
// name without labels). Families without registered help get a stable
// generated line, so the exposition is valid either way.
func SetMetricHelp(family, help string) {
	promHelp.Lock()
	promHelp.m[family] = help
	promHelp.Unlock()
}

func helpFor(family, kind string) string {
	promHelp.Lock()
	h, ok := promHelp.m[family]
	promHelp.Unlock()
	if ok {
		return h
	}
	return "boedag " + kind + " " + family + "."
}

// splitSeries separates the registry convention "name{k=v,k=v}" into the
// family name and the rendered Prometheus label set ("" when unlabeled).
func splitSeries(name string) (family, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return sanitizeName(name), ""
	}
	family = sanitizeName(name[:i])
	var parts []string
	for _, kv := range strings.Split(name[i+1:len(name)-1], ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			k, v = "label", kv
		}
		parts = append(parts, sanitizeLabel(k)+`="`+escapeLabelValue(v)+`"`)
	}
	return family, "{" + strings.Join(parts, ",") + "}"
}

// sanitizeName maps a registry name onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_:], replacing every other byte with '_'.
func sanitizeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '_', r == ':':
			return r
		}
		return '_'
	}, s)
}

// sanitizeLabel maps a label key onto [a-zA-Z0-9_].
func sanitizeLabel(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '_':
			return r
		}
		return '_'
	}, s)
}

// escapeLabelValue escapes backslash, double quote, and newline per the
// exposition format.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a sample value the way Prometheus expects: shortest
// round-trip decimal.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promSeries is one series within a family: its label set and the
// instrument behind it.
type promSeries struct {
	labels string
	name   string // registry name, to resolve the instrument
}

// promFamilies regroups a sorted registry name list into families in
// first-appearance order (the list is sorted, and "name" sorts before
// "name{…}", so every family's series stay adjacent and the unlabeled
// series leads).
func promFamilies(names []string) (order []string, series map[string][]promSeries) {
	series = make(map[string][]promSeries, len(names))
	for _, n := range names {
		fam, labels := splitSeries(n)
		if _, ok := series[fam]; !ok {
			order = append(order, fam)
		}
		series[fam] = append(series[fam], promSeries{labels: labels, name: n})
	}
	return order, series
}

// WritePrometheus renders every metric in Prometheus text exposition
// format: counters and gauges as single samples, histograms as
// cumulative le-bucketed series with _sum and _count. Families are
// emitted in sorted-name order with stable # HELP/# TYPE headers, so
// the output is byte-deterministic for a settled registry.
func (r *Registry) WritePrometheus(w io.Writer) error {
	cn, gn, hn := r.snapshot()

	writeFamily := func(kind string, names []string, sample func(io.Writer, string, string, string) error) error {
		order, series := promFamilies(names)
		for _, fam := range order {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
				fam, escapeHelp(helpFor(fam, kind)), fam, kind); err != nil {
				return err
			}
			for _, s := range series[fam] {
				if err := sample(w, fam, s.labels, s.name); err != nil {
					return err
				}
			}
		}
		return nil
	}

	if err := writeFamily("counter", cn, func(w io.Writer, fam, labels, name string) error {
		_, err := fmt.Fprintf(w, "%s%s %d\n", fam, labels, r.Counter(name).Value())
		return err
	}); err != nil {
		return err
	}
	if err := writeFamily("gauge", gn, func(w io.Writer, fam, labels, name string) error {
		_, err := fmt.Fprintf(w, "%s%s %s\n", fam, labels, formatFloat(r.Gauge(name).Value()))
		return err
	}); err != nil {
		return err
	}
	return writeFamily("histogram", hn, func(w io.Writer, fam, labels, name string) error {
		return r.writePromHistogram(w, fam, labels, name)
	})
}

// writePromHistogram expands one histogram series into cumulative
// _bucket{le="…"} samples (upper bounds from the registry's exponential
// buckets, closed by le="+Inf"), then _sum and _count.
func (r *Registry) writePromHistogram(w io.Writer, fam, labels, name string) error {
	h := r.Histogram(name)
	counts, bounds := h.Buckets()
	// Merge the family's labels with the le label.
	le := func(bound string) string {
		if labels == "" {
			return `{le="` + bound + `"}`
		}
		return labels[:len(labels)-1] + `,le="` + bound + `"}`
	}
	var cum int64
	for i, bound := range bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fam, le(formatFloat(bound)), cum); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fam, le("+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", fam, labels, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", fam, labels, h.Count())
	return err
}

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
