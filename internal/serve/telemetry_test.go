package serve

import (
	"encoding/json"
	"net/http"
	"runtime"
	"sync"
	"testing"

	"boedag/internal/obs"
)

// The telemetry suite pins the observability surface this service
// exports: per-endpoint latency histograms, request/phase trace spans,
// coalescing metrics, the /version build endpoint, and the pprof gate.

func TestPerRouteLatencyHistograms(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	get(t, ts.URL+"/healthz")
	get(t, ts.URL+"/healthz")
	post(t, ts.URL+"/v1/estimate", readRequest(t, "estimate_wc_ts"))

	reg := s.Metrics()
	if got := reg.Histogram("request_duration_s{route=/healthz}").Count(); got != 2 {
		t.Errorf("healthz route histogram count = %d, want 2", got)
	}
	if got := reg.Histogram("request_duration_s{route=/v1/estimate}").Count(); got != 1 {
		t.Errorf("estimate route histogram count = %d, want 1", got)
	}
	if got := reg.Histogram("request_duration_s").Count(); got != 3 {
		t.Errorf("aggregate histogram count = %d, want 3", got)
	}
}

// TestRequestPhaseEvents checks that one served estimate emits an
// EvRequest span plus decode/estimate/encode EvRequestPhase children,
// all carrying the same request ordinal so trace exporters can nest
// them.
func TestRequestPhaseEvents(t *testing.T) {
	rec := obs.NewRecorder()
	_, ts := newTestServer(t, Config{Workers: 2,
		Observe: obs.Options{Tracer: rec}})
	status, _, _ := post(t, ts.URL+"/v1/estimate", readRequest(t, "estimate_wc_ts"))
	if status != http.StatusOK {
		t.Fatalf("estimate status = %d", status)
	}

	reqs := rec.ByType(obs.EvRequest)
	if len(reqs) != 1 {
		t.Fatalf("recorded %d EvRequest events, want 1", len(reqs))
	}
	req := reqs[0]
	if req.Seq < 1 {
		t.Errorf("request ordinal = %d, want ≥ 1", req.Seq)
	}
	if req.Detail != "POST /v1/estimate" || req.Value != http.StatusOK {
		t.Errorf("request span = %+v", req)
	}
	phases := make(map[string]int)
	for _, ev := range rec.ByType(obs.EvRequestPhase) {
		if ev.Seq != req.Seq {
			t.Errorf("phase %q ordinal = %d, want the request's %d", ev.Detail, ev.Seq, req.Seq)
		}
		if ev.Dur < 0 {
			t.Errorf("phase %q duration = %v", ev.Detail, ev.Dur)
		}
		phases[ev.Detail]++
	}
	for _, want := range []string{"decode", "estimate", "encode"} {
		if phases[want] != 1 {
			t.Errorf("phase %q recorded %d times, want 1 (got %v)", want, phases[want], phases)
		}
	}
}

// TestCoalescedRequestsRecorded pins the coalescing telemetry: of n
// identical requests exactly one computes, and every other one is
// counted in estimates_coalesced, observed by the coalesced_wait_s
// histogram, and traced as a coalesce-wait phase.
func TestCoalescedRequestsRecorded(t *testing.T) {
	const n = 16
	rec := obs.NewRecorder()
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{MaxConcurrent: n, QueueDepth: n,
		Observe: obs.Options{Tracer: rec}})
	s.testHookEstimate = func() { <-release }

	body := readRequest(t, "estimate_wc_ts")
	var wg sync.WaitGroup
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			if status, _, _, err := tryPost(ts.URL+"/v1/estimate", body); err != nil || status != http.StatusOK {
				t.Errorf("estimate: status %d, err %v", status, err)
			}
		}()
	}
	for i := 0; i < n; i++ {
		<-started
	}
	close(release)
	wg.Wait()

	reg := s.Metrics()
	if got := reg.Counter("estimates_computed").Value(); got != 1 {
		t.Errorf("estimates_computed = %d, want 1", got)
	}
	// Whether a request coalesced onto the in-flight computation or hit
	// the cache afterwards, it must be counted: exactly n-1 of them.
	if got := reg.Counter("estimates_coalesced").Value(); got != n-1 {
		t.Errorf("estimates_coalesced = %d, want %d", got, n-1)
	}
	if got := reg.Histogram("coalesced_wait_s").Count(); got != n-1 {
		t.Errorf("coalesced_wait_s count = %d, want %d", got, n-1)
	}
	var waits int
	for _, ev := range rec.ByType(obs.EvRequestPhase) {
		if ev.Detail == "coalesce-wait" {
			waits++
		}
	}
	if waits != n-1 {
		t.Errorf("coalesce-wait phase events = %d, want %d", waits, n-1)
	}
}

func TestVersionEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body, hdr := get(t, ts.URL+"/version")
	if status != http.StatusOK {
		t.Fatalf("GET /version = %d: %s", status, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var v VersionResponse
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("decode: %v\n%s", err, body)
	}
	if v.Build.GoVersion != runtime.Version() {
		t.Errorf("go_version = %q, want %q", v.Build.GoVersion, runtime.Version())
	}
	if v.Build.GOMAXPROCS < 1 || v.Build.NumCPU < 1 {
		t.Errorf("procs = %d/%d", v.Build.GOMAXPROCS, v.Build.NumCPU)
	}
	if v.UptimeS < 0 {
		t.Errorf("uptime_s = %v", v.UptimeS)
	}
	if status, _, _, _ := tryPost(ts.URL+"/version", nil); status != http.StatusMethodNotAllowed {
		t.Errorf("POST /version = %d, want 405", status)
	}
}

// TestPprofGated: the profile endpoints exist only when EnablePprof is
// set — they bypass admission control, so off must mean absent.
func TestPprofGated(t *testing.T) {
	_, off := newTestServer(t, Config{})
	if status, _, _ := get(t, off.URL+"/debug/pprof/"); status != http.StatusNotFound {
		t.Errorf("pprof without EnablePprof = %d, want 404", status)
	}
	_, on := newTestServer(t, Config{EnablePprof: true})
	if status, body, _ := get(t, on.URL+"/debug/pprof/"); status != http.StatusOK || len(body) == 0 {
		t.Errorf("pprof index with EnablePprof = %d (%d bytes), want 200", status, len(body))
	}
}
