package trace

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
	"time"

	"boedag/internal/boe"
	"boedag/internal/cluster"
	"boedag/internal/dag"
	"boedag/internal/statemodel"
	"boedag/internal/units"
	"boedag/internal/workload"
)

func TestExportTasksCSV(t *testing.T) {
	res := sampleResult(t)
	var buf bytes.Buffer
	if err := ExportTasksCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(res.Tasks)+1 {
		t.Fatalf("csv rows = %d, want %d tasks + header", len(rows), len(res.Tasks))
	}
	if rows[0][0] != "job" || rows[0][8] != "retries" {
		t.Errorf("header = %v", rows[0])
	}
	// Every data row parses: duration = end - start within rounding.
	for _, row := range rows[1:] {
		start, err1 := strconv.ParseFloat(row[3], 64)
		end, err2 := strconv.ParseFloat(row[4], 64)
		dur, err3 := strconv.ParseFloat(row[5], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("unparseable row %v", row)
		}
		if diff := (end - start) - dur; diff > 0.01 || diff < -0.01 {
			t.Errorf("row %v: duration mismatch", row)
		}
	}
}

func TestExportStagesCSV(t *testing.T) {
	res := sampleResult(t)
	var buf bytes.Buffer
	if err := ExportStagesCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(res.Stages)+1 {
		t.Fatalf("csv rows = %d, want %d stages + header", len(rows), len(res.Stages))
	}
}

func TestExportResultJSON(t *testing.T) {
	res := sampleResult(t)
	var buf bytes.Buffer
	if err := ExportResultJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Workflow string  `json:"workflow"`
		Makespan float64 `json:"makespan_s"`
		Stages   []struct {
			Job        string `json:"job"`
			Bottleneck string `json:"bottleneck"`
		} `json:"stages"`
		States []struct {
			Seq int `json:"seq"`
		} `json:"states"`
		Tasks int `json:"tasks"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Workflow != res.Workflow {
		t.Errorf("workflow = %q", decoded.Workflow)
	}
	if decoded.Makespan != res.Makespan.Seconds() {
		t.Errorf("makespan = %v", decoded.Makespan)
	}
	if len(decoded.Stages) != len(res.Stages) || len(decoded.States) != len(res.States) {
		t.Error("stage/state counts differ")
	}
	if decoded.Tasks != len(res.Tasks) {
		t.Errorf("tasks = %d", decoded.Tasks)
	}
}

func TestExportPlanJSON(t *testing.T) {
	spec := cluster.PaperCluster()
	timer := &statemodel.BOETimer{Model: boe.New(spec), TaskStartOverhead: time.Second}
	plan, err := statemodel.New(spec, timer, statemodel.Options{}).
		Estimate(dag.Single(workload.WordCount(3 * units.GB)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ExportPlanJSON(&buf, plan); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"workflow": "WC"`, `"task_time_s"`, `"parallelism"`} {
		if !strings.Contains(out, want) {
			t.Errorf("plan JSON missing %s", want)
		}
	}
}
