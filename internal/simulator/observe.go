package simulator

import (
	"boedag/internal/cluster"
	"boedag/internal/obs"
)

// Event.Demand is indexed by cluster.Resource; obs mirrors the size
// instead of importing cluster, so pin the two constants together here.
var _ [obs.NumDemandResources]float64 = [cluster.NumResources]float64{}

// simMetrics holds the simulator's pre-resolved metric instruments so the
// hot loop never pays the registry's name lookup. Nil when metrics are
// off; every update site guards on that.
type simMetrics struct {
	tasksScheduled *obs.Counter
	tasksFinished  *obs.Counter
	taskRetries    *obs.Counter
	taskPreempts   *obs.Counter
	loopEvents     *obs.Counter
	states         *obs.Counter
	taskDur        *obs.Histogram
	queueWait      *obs.Histogram
	stateDur       *obs.Histogram
	util           [cluster.NumResources]*obs.Gauge
}

func newSimMetrics(reg *obs.Registry) *simMetrics {
	if reg == nil {
		return nil
	}
	m := &simMetrics{
		tasksScheduled: reg.Counter("sim_tasks_scheduled"),
		tasksFinished:  reg.Counter("sim_tasks_finished"),
		taskRetries:    reg.Counter("sim_task_retries"),
		taskPreempts:   reg.Counter("sim_task_preempts"),
		loopEvents:     reg.Counter("sim_loop_events"),
		states:         reg.Counter("sim_states"),
		taskDur:        reg.Histogram("sim_task_duration_s"),
		queueWait:      reg.Histogram("sim_queue_wait_s"),
		stateDur:       reg.Histogram("sim_state_duration_s"),
	}
	for _, r := range cluster.Resources() {
		m.util[r] = reg.Gauge("sim_mean_utilization_" + r.String())
	}
	return m
}

// recordFinalUtilization folds the per-state time-weighted utilization
// into the run-level mean gauges.
func (m *simMetrics) recordFinalUtilization(states []StateRecord) {
	var sum [cluster.NumResources]float64
	total := 0.0
	for _, st := range states {
		d := st.Duration().Seconds()
		for r := 0; r < cluster.NumResources; r++ {
			sum[r] += st.Utilization[r] * d
		}
		total += d
	}
	if total <= 0 {
		return
	}
	for r := 0; r < cluster.NumResources; r++ {
		m.util[r].Set(sum[r] / total)
	}
}
