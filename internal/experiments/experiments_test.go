package experiments

import (
	"strings"
	"testing"
	"time"

	"boedag/internal/evalpool"
	"boedag/internal/sched"
	"boedag/internal/statemodel"
	"boedag/internal/tpch"
	"boedag/internal/units"
	"boedag/internal/workload"
)

// testConfig shrinks the paper's data sizes 10x so the whole experiment
// suite runs in well under a second per call.
func testConfig() Config {
	return Scaled(10)
}

func TestDefaultMatchesPaper(t *testing.T) {
	cfg := Default()
	if cfg.MicroInput != 100*units.GB {
		t.Errorf("micro input = %v, want 100 GB", cfg.MicroInput)
	}
	if cfg.TPCHScale != 80 {
		t.Errorf("TPC-H scale = %v, want 80", cfg.TPCHScale)
	}
	if cfg.Spec.Nodes != 11 {
		t.Errorf("nodes = %d, want 11", cfg.Spec.Nodes)
	}
}

func TestScaledDividesSizes(t *testing.T) {
	cfg := Scaled(10)
	if cfg.MicroInput != 10*units.GB {
		t.Errorf("scaled micro input = %v, want 10 GB", cfg.MicroInput)
	}
	if cfg.TPCHScale != 8 {
		t.Errorf("scaled TPC-H = %v, want 8", cfg.TPCHScale)
	}
	same := Scaled(1)
	if same.MicroInput != Default().MicroInput {
		t.Error("Scaled(1) changed sizes")
	}
}

func TestWebAnalyticsShape(t *testing.T) {
	w := WebAnalytics(10 * units.GB)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 4 {
		t.Fatalf("web analytics has %d jobs, want 4 (Figure 1)", len(w.Jobs))
	}
	// j2 and j3 both depend on j1 only — they run in parallel.
	for _, id := range []string{"j2", "j3"} {
		j := w.Job(id)
		if j == nil || len(j.Deps) != 1 || j.Deps[0] != "j1" {
			t.Errorf("%s deps wrong: %+v", id, j)
		}
	}
	j4 := w.Job("j4")
	if len(j4.Deps) != 2 {
		t.Errorf("j4 deps = %v, want both j2 and j3", j4.Deps)
	}
	// Zero bytes falls back to a sane default.
	if WebAnalytics(0).Jobs[0].Profile.InputBytes <= 0 {
		t.Error("default log size missing")
	}
}

func TestTableIIIWorkflowsCount(t *testing.T) {
	flows, err := TableIIIWorkflows(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 51 {
		t.Fatalf("Table III has %d workflows, want 51 (paper §V-C)", len(flows))
	}
	seen := map[string]bool{}
	for _, f := range flows {
		if seen[f.Label] {
			t.Errorf("duplicate label %s", f.Label)
		}
		seen[f.Label] = true
		if err := f.Flow.Validate(); err != nil {
			t.Errorf("%s: %v", f.Label, err)
		}
	}
	for _, want := range []string{"TS-Q1", "TS-Q22", "WC-Q1", "WC-Q22", "WC-TS",
		"WC-TS2R", "WC-TS3R", "WC-KM", "WC-PR", "TS-KM", "TS-PR"} {
		if !seen[want] {
			t.Errorf("missing workflow %s", want)
		}
	}
}

func TestTable1Rows(t *testing.T) {
	rows, err := Table1(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("Table I has %d rows, want 6", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Workload] = r
		if r.BottleneckString() == "" {
			t.Errorf("%s: no bottleneck measured", r.Workload)
		}
	}
	if !byName["WC"].Compression || byName["WC"].Replicas != "3" {
		t.Errorf("WC row = %+v", byName["WC"])
	}
	if !strings.Contains(byName["WC"].BottleneckString(), "cpu") {
		t.Errorf("WC bottleneck %q should include cpu", byName["WC"].BottleneckString())
	}
	if !strings.Contains(byName["TS3R"].BottleneckString(), "network") {
		t.Errorf("TS3R bottleneck %q should include network (3-replica writes)",
			byName["TS3R"].BottleneckString())
	}
}

func TestFigure6ShapesHold(t *testing.T) {
	series, err := Figure6(testConfig(), Figure6Options{MaxPerNode: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 6 {
		t.Fatalf("Figure 6 has %d panels, want 6", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 12 {
			t.Errorf("%s %s: %d points, want 12", s.Workload, s.Stage, len(s.Points))
		}
		// The headline: BOE at least matches the baseline on average, and
		// clearly beats it at the top of the sweep for the map panels.
		if s.AvgAccuracyBOE() < s.AvgAccuracyBaseline()-0.02 {
			t.Errorf("%s %s: BOE avg %.2f < baseline %.2f",
				s.Workload, s.Stage, s.AvgAccuracyBOE(), s.AvgAccuracyBaseline())
		}
	}
	// WC map: actual time flat to 6/node then rising (CPU saturation) —
	// the baseline must degrade at Δ=12 while BOE tracks.
	wcMap := series[0]
	if wcMap.Workload != "WC" || wcMap.Stage != Fig6Map {
		t.Fatalf("series[0] = %s %s", wcMap.Workload, wcMap.Stage)
	}
	if f := wcMap.ImprovementAt(12); f < 2 {
		t.Errorf("WC map improvement at Δ/node=12 = %.1fx, want ≥ 2x", f)
	}
	lowΔ := wcMap.Points[0].Actual
	highΔ := wcMap.Points[11].Actual
	if highΔ <= lowΔ {
		t.Errorf("WC map task time did not rise with oversubscription: %v → %v", lowΔ, highΔ)
	}
}

func TestTable2Shapes(t *testing.T) {
	rows, err := Table2(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("Table II has %d rows, want 4 (2 DAGs × 2 jobs)", len(rows))
	}
	for _, r := range rows {
		if len(r.Cells) == 0 {
			t.Errorf("%s/%s: no cells", r.DAG, r.Job)
			continue
		}
		first := r.Cells[0]
		if first.Accuracy() < 0.7 {
			t.Errorf("%s/%s state %d accuracy %.2f, want ≥ 0.7 in the first state",
				r.DAG, r.Job, first.State, first.Accuracy())
		}
		for _, c := range r.Cells {
			if c.Actual <= 0 || c.Estimated <= 0 {
				t.Errorf("%s/%s s%d: degenerate cell %+v", r.DAG, r.Job, c.State, c)
			}
			if c.Parallelism <= 0 {
				t.Errorf("%s/%s s%d: no parallelism", r.DAG, r.Job, c.State)
			}
		}
	}
}

func TestTable3SmallSubset(t *testing.T) {
	cfg := testConfig()
	flows, err := TableIIIWorkflows(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A representative slice: one TS hybrid, one WC hybrid, one micro pair.
	subset := []NamedWorkflow{}
	for _, f := range flows {
		switch f.Label {
		case "TS-Q6", "WC-Q1", "WC-TS":
			subset = append(subset, f)
		}
	}
	sum, err := Table3For(cfg, subset)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Rows) != 3 {
		t.Fatalf("summary rows = %d", len(sum.Rows))
	}
	for _, row := range sum.Rows {
		for _, mode := range statemodel.Modes() {
			if row.Accuracy[mode] < 0.5 {
				t.Errorf("%s %s accuracy %.2f — suspiciously low even at small scale",
					row.Label, mode, row.Accuracy[mode])
			}
			if row.Estimate[mode] <= 0 {
				t.Errorf("%s %s: no estimate", row.Label, mode)
			}
			if row.StageAccuracy[mode] <= 0 {
				t.Errorf("%s %s: no stage breakdown", row.Label, mode)
			}
		}
		if row.EstimationTime > time.Second {
			t.Errorf("%s estimation took %v, paper requires < 1s", row.Label, row.EstimationTime)
		}
		if row.Jobs <= 1 {
			t.Errorf("%s: job count %d", row.Label, row.Jobs)
		}
	}
	for _, mode := range statemodel.Modes() {
		if sum.AvgAccuracy[mode] <= 0 || sum.MinAccuracy[mode] <= 0 {
			t.Errorf("%s: summary stats missing", mode)
		}
	}
}

func TestRenderersProduceTables(t *testing.T) {
	cfg := testConfig()
	var sb strings.Builder

	rows1, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	RenderTable1(&sb, rows1)
	if !strings.Contains(sb.String(), "Bottleneck") {
		t.Error("Table I render missing header")
	}

	sb.Reset()
	series, err := Figure6(cfg, Figure6Options{MaxPerNode: 3})
	if err != nil {
		t.Fatal(err)
	}
	RenderFigure6(&sb, series[:1])
	if !strings.Contains(sb.String(), "Δ/node") {
		t.Error("Figure 6 render missing axis")
	}

	sb.Reset()
	rows2, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	RenderTable2(&sb, rows2)
	if !strings.Contains(sb.String(), "s1") {
		t.Error("Table II render missing state columns")
	}

	sb.Reset()
	flows, _ := TableIIIWorkflows(cfg)
	sum, err := Table3For(cfg, flows[:2])
	if err != nil {
		t.Fatal(err)
	}
	RenderTable3(&sb, sum)
	out := sb.String()
	for _, want := range []string{"Alg1-Mean", "Alg1-Mid", "Alg2-Normal", "avg accuracy"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table III render missing %q", want)
		}
	}
}

func TestBuildNamedRegistry(t *testing.T) {
	cfg := testConfig()
	for _, name := range WorkflowNames() {
		flow, err := BuildNamed(name, cfg)
		if err != nil {
			t.Errorf("BuildNamed(%q): %v", name, err)
			continue
		}
		if err := flow.Validate(); err != nil {
			t.Errorf("BuildNamed(%q) invalid: %v", name, err)
		}
	}
	if _, err := BuildNamed("definitely-not-a-workflow", cfg); err == nil {
		t.Error("unknown name accepted")
	}
	if _, err := BuildNamed("q99", cfg); err == nil {
		t.Error("q99 accepted")
	}
	// Hybrid name composes arbitrary pairs.
	flow, err := BuildNamed("ts3r+q6", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(flow.Roots()) != 2 {
		t.Errorf("hybrid has %d roots, want 2", len(flow.Roots()))
	}
}

func TestQueryJobCountMatchesPaper(t *testing.T) {
	// Cross-check from the experiments side: Q21 in a hybrid still has 9
	// jobs plus the micro job.
	cfg := testConfig()
	flow, err := BuildNamed("wc+q21", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(flow.Jobs) != 10 {
		t.Errorf("WC+Q21 has %d jobs, want 10", len(flow.Jobs))
	}
	n, err := tpch.JobCount(21, tpch.Schema{ScaleFactor: cfg.TPCHScale})
	if err != nil || n != 9 {
		t.Errorf("Q21 job count = %d (%v), want 9", n, err)
	}
}

func TestFig6StageString(t *testing.T) {
	if Fig6Map.String() != "map" || Fig6Shuffle.String() != "shuffle" || Fig6Reduce.String() != "reduce" {
		t.Error("Fig6Stage strings wrong")
	}
}

func TestMeasurePhasesUsesSubStages(t *testing.T) {
	cfg := testConfig()
	phases, err := measurePhases(cfg, evalpool.NewResultCache(), workload.TeraSort(cfg.MicroInput), 6)
	if err != nil {
		t.Fatal(err)
	}
	if phases[Fig6Map] <= 0 || phases[Fig6Shuffle] <= 0 || phases[Fig6Reduce] <= 0 {
		t.Errorf("phases = %v, want all positive for TeraSort", phases)
	}
}

func TestSkewSweep(t *testing.T) {
	cfg := testConfig()
	rows, err := SkewSweep(cfg, []float64{0, 0.2, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for _, mode := range statemodel.AllModes() {
			if r.Accuracy[mode] <= 0 {
				t.Errorf("cv=%.1f %s: no accuracy", r.CV, mode)
			}
		}
	}
	// With no skew the paper's modes should be excellent; the empirical
	// extension pays a small price for mixing contention regimes in its
	// sample.
	for _, mode := range statemodel.Modes() {
		if acc := rows[0].Accuracy[mode]; acc < 0.85 {
			t.Errorf("cv=0 %s accuracy %.2f, want ≥ 0.85", mode, acc)
		}
	}
	if acc := rows[0].Accuracy[statemodel.EmpiricalMode]; acc < 0.75 {
		t.Errorf("cv=0 empirical accuracy %.2f, want ≥ 0.75", acc)
	}
	if _, err := SkewSweep(cfg, []float64{-1}); err == nil {
		t.Error("negative CV accepted")
	}
}

func TestPolicyStudy(t *testing.T) {
	cfg := testConfig()
	rows, err := PolicyStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(sched.Policies()) {
		t.Fatalf("rows = %d, want one per policy (%d)", len(rows), len(sched.Policies()))
	}
	for _, r := range rows {
		if r.Makespan <= 0 {
			t.Errorf("%s: no makespan", r.Policy)
		}
		if r.Accuracy < 0.6 {
			t.Errorf("%s: matched-policy accuracy %.2f", r.Policy, r.Accuracy)
		}
	}
	// Matched-policy modelling should stay in the DRF assumption's
	// neighbourhood. FIFO is the hardest case: the estimator re-grants
	// from scratch each state (no held-container memory), which makes its
	// FIFO stricter than the simulator's, so a ~10-point gap is the
	// documented limitation (EXPERIMENTS.md), not a regression.
	for _, r := range rows {
		if r.Policy == sched.PolicyDRF {
			continue
		}
		if r.Accuracy+0.12 < r.CrossAccuracy {
			t.Errorf("%s: matched %.2f far below DRF-assumed %.2f",
				r.Policy, r.Accuracy, r.CrossAccuracy)
		}
	}
}

func TestRenderExtensions(t *testing.T) {
	cfg := testConfig()
	var sb strings.Builder
	rows, err := SkewSweep(cfg, []float64{0.1})
	if err != nil {
		t.Fatal(err)
	}
	RenderSkewSweep(&sb, rows)
	if !strings.Contains(sb.String(), "Ext-Empirical") {
		t.Error("skew sweep render missing empirical column")
	}
	sb.Reset()
	prows, err := PolicyStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	RenderPolicyStudy(&sb, prows)
	if !strings.Contains(sb.String(), "fifo") {
		t.Error("policy study render missing fifo row")
	}
}

func TestFailureStudy(t *testing.T) {
	cfg := testConfig()
	rows, err := FailureStudy(cfg, []float64{0, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Retries != 0 {
		t.Errorf("p=0 produced %d retries", rows[0].Retries)
	}
	if rows[1].Retries == 0 {
		t.Error("p=0.3 produced no retries")
	}
	if rows[1].Makespan <= rows[0].Makespan {
		t.Error("failures did not slow the workload")
	}
	// The retry correction must help (or at least not hurt) under failures.
	if rows[1].Corrected+0.03 < rows[1].Uncorrected {
		t.Errorf("correction hurt: %.2f vs %.2f", rows[1].Corrected, rows[1].Uncorrected)
	}
	if _, err := FailureStudy(cfg, []float64{1.5}); err == nil {
		t.Error("probability > 1 accepted")
	}
}

func TestNodeAwareStudy(t *testing.T) {
	cfg := testConfig()
	rows, err := NodeAwareStudy(cfg, []string{"wc", "wc+ts"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Aggregate <= 0 || r.PerNode <= 0 {
			t.Errorf("%s: missing makespans %+v", r.Label, r)
		}
		// Per-node placement can only add imbalance, never remove work.
		if r.PerNode < r.Aggregate-r.Aggregate/10 {
			t.Errorf("%s: per-node (%v) much faster than aggregate (%v)?",
				r.Label, r.PerNode, r.Aggregate)
		}
		if r.AccAggregate < 0.6 || r.AccPerNode < 0.6 {
			t.Errorf("%s: accuracies %.2f / %.2f", r.Label, r.AccAggregate, r.AccPerNode)
		}
	}
	if _, err := NodeAwareStudy(cfg, []string{"no-such"}); err == nil {
		t.Error("unknown workflow accepted")
	}
}
