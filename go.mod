module boedag

go 1.24
