package evalpool

import (
	"fmt"
	"sync"
	"testing"

	"boedag/internal/obs"
)

func fill(c *Cache[int], n int) {
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%03d", i)
		v := i
		c.Do(k, func() (int, error) { return v, nil })
	}
}

func TestCacheCapacityEvictsLRU(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCache[int]().WithCapacity(3).WithMetrics(reg, "c")
	fill(c, 5) // k000..k004; k000 and k001 must be gone
	if got := c.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	if got := c.Evictions(); got != 2 {
		t.Errorf("Evictions = %d, want 2", got)
	}
	if got := reg.Counter("c_evictions").Value(); got != 2 {
		t.Errorf("c_evictions counter = %d, want 2", got)
	}
	// The survivors are the three most recent; an evicted key recomputes.
	recomputed := 0
	c.Do("k000", func() (int, error) { recomputed++; return 0, nil })
	if recomputed != 1 {
		t.Errorf("evicted key did not recompute")
	}
	hitBefore, _ := c.Stats()
	c.Do("k004", func() (int, error) { t.Error("hot key recomputed"); return 0, nil })
	if hitAfter, _ := c.Stats(); hitAfter != hitBefore+1 {
		t.Errorf("hot key was not a hit")
	}
}

func TestCacheLRUTouchOnHit(t *testing.T) {
	c := NewCache[int]().WithCapacity(2)
	fill(c, 2)                                          // k000, k001
	c.Do("k000", func() (int, error) { return 0, nil }) // touch k000
	c.Do("k002", func() (int, error) { return 2, nil }) // evicts k001, not k000
	ran := false
	c.Do("k000", func() (int, error) { ran = true; return 0, nil })
	if ran {
		t.Errorf("recently touched key was evicted")
	}
	ran = false
	c.Do("k001", func() (int, error) { ran = true; return 1, nil })
	if !ran {
		t.Errorf("least recently used key survived eviction")
	}
}

func TestCacheSeedServesWithoutCompute(t *testing.T) {
	c := NewCache[string]()
	c.Seed("warm", "restored")
	v, err := c.Do("warm", func() (string, error) {
		t.Error("seeded key recomputed")
		return "", nil
	})
	if err != nil || v != "restored" {
		t.Fatalf("Do(seeded) = %q, %v", v, err)
	}
	if hits, _ := c.Stats(); hits != 1 {
		t.Errorf("seeded lookup counted %d hits, want 1", hits)
	}
	// Seeding an existing key must not clobber the live entry.
	c.Do("live", func() (string, error) { return "computed", nil })
	c.Seed("live", "stale-snapshot")
	v, _ = c.Do("live", func() (string, error) { return "", nil })
	if v != "computed" {
		t.Errorf("Seed overwrote a live entry: got %q", v)
	}
}

func TestCacheRangeExportsCompletedInRecencyOrder(t *testing.T) {
	c := NewCache[int]()
	fill(c, 3)                                          // k000 k001 k002
	c.Do("k000", func() (int, error) { return 0, nil }) // touch: k000 now MRU
	c.Do("err", func() (int, error) { return 0, fmt.Errorf("boom") })
	var keys []string
	c.Range(func(k string, v int) bool {
		keys = append(keys, k)
		return true
	})
	want := []string{"k000", "k002", "k001"}
	if len(keys) != len(want) {
		t.Fatalf("Range exported %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Range exported %v, want %v", keys, want)
		}
	}
	// Early stop.
	n := 0
	c.Range(func(string, int) bool { n++; return false })
	if n != 1 {
		t.Errorf("Range ignored early stop: %d calls", n)
	}
}

func TestCacheCapacityConcurrent(t *testing.T) {
	c := NewCache[int]().WithCapacity(8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (w*7+i)%32)
				v := i
				c.Do(k, func() (int, error) { return v, nil })
				c.Range(func(string, int) bool { return true })
			}
		}(w)
	}
	wg.Wait()
	if got := c.Len(); got > 8 {
		t.Errorf("Len = %d exceeds capacity 8", got)
	}
}
