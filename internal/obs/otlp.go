package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// OTLP export: a hand-rolled encoding of the event stream and the metrics
// registry onto the OpenTelemetry Protocol's JSON wire format (the
// OTLP/HTTP JSON mapping of opentelemetry-proto), using only the standard
// library. Span-shaped events become spans on a single trace — tasks
// parented under their stage, sub-stages under their task, workflow
// states as root-level spans — and the registry's counters, gauges and
// histograms become OTLP sums, gauges and histograms. The output decodes
// with encoding/json into the standard resourceSpans / resourceMetrics
// shape and lands in any OTLP-compatible collector.

// OTLPOptions configure an export.
type OTLPOptions struct {
	// Start anchors model-time zero on the wall clock. Zero value anchors
	// the run so its last event ends at export time (collectors render
	// the run as "just finished"); tests pass a fixed instant for
	// deterministic output.
	Start time.Time
	// Service is the resource's service.name attribute ("boedag" when
	// empty).
	Service string
	// Annotations attach derived analysis args (package explain's
	// critical-path and bottleneck attribution) to the matching spans:
	// stage annotations become boedag.<key> span attributes, run
	// annotations become boedag.<key> resource attributes.
	Annotations *TraceAnnotations
}

func (o OTLPOptions) withDefaults(events []Event) OTLPOptions {
	if o.Service == "" {
		o.Service = "boedag"
	}
	if o.Start.IsZero() {
		span := 0.0
		for _, ev := range events {
			if end := ev.Time + ev.Dur; end > span {
				span = end
			}
		}
		o.Start = time.Now().Add(-time.Duration(span * float64(time.Second)))
	}
	return o
}

// The proto3 JSON mapping renders 64-bit integers as decimal strings and
// byte-array ids as hex strings; these types mirror the subset of
// opentelemetry-proto the exporter emits.

type otlpKeyValue struct {
	Key   string        `json:"key"`
	Value otlpByteValue `json:"value"`
}

// otlpByteValue is proto AnyValue restricted to the four cases used.
type otlpByteValue struct {
	StringValue *string  `json:"stringValue,omitempty"`
	IntValue    *string  `json:"intValue,omitempty"`
	DoubleValue *float64 `json:"doubleValue,omitempty"`
	BoolValue   *bool    `json:"boolValue,omitempty"`
}

func strAttr(key, v string) otlpKeyValue {
	return otlpKeyValue{Key: key, Value: otlpByteValue{StringValue: &v}}
}

func intAttr(key string, v int64) otlpKeyValue {
	s := strconv.FormatInt(v, 10)
	return otlpKeyValue{Key: key, Value: otlpByteValue{IntValue: &s}}
}

func floatAttr(key string, v float64) otlpKeyValue {
	return otlpKeyValue{Key: key, Value: otlpByteValue{DoubleValue: &v}}
}

func boolAttr(key string, v bool) otlpKeyValue {
	return otlpKeyValue{Key: key, Value: otlpByteValue{BoolValue: &v}}
}

// annAttrs renders an annotation arg map as boedag.<key> attributes in
// sorted key order. Unknown value types fall back to their fmt %v form.
func annAttrs(m map[string]any) []otlpKeyValue {
	if len(m) == 0 {
		return nil
	}
	out := make([]otlpKeyValue, 0, len(m))
	for _, k := range sortedKeys(m) {
		key := "boedag." + k
		switch v := m[k].(type) {
		case bool:
			out = append(out, boolAttr(key, v))
		case int:
			out = append(out, intAttr(key, int64(v)))
		case int64:
			out = append(out, intAttr(key, v))
		case float64:
			out = append(out, floatAttr(key, v))
		case string:
			out = append(out, strAttr(key, v))
		default:
			out = append(out, strAttr(key, fmt.Sprintf("%v", v)))
		}
	}
	return out
}

type otlpResource struct {
	Attributes []otlpKeyValue `json:"attributes"`
}

type otlpScope struct {
	Name    string `json:"name"`
	Version string `json:"version,omitempty"`
}

type otlpSpan struct {
	TraceID           string         `json:"traceId"`
	SpanID            string         `json:"spanId"`
	ParentSpanID      string         `json:"parentSpanId,omitempty"`
	Name              string         `json:"name"`
	Kind              int            `json:"kind"`
	StartTimeUnixNano string         `json:"startTimeUnixNano"`
	EndTimeUnixNano   string         `json:"endTimeUnixNano"`
	Attributes        []otlpKeyValue `json:"attributes,omitempty"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpNumberPoint struct {
	StartTimeUnixNano string   `json:"startTimeUnixNano,omitempty"`
	TimeUnixNano      string   `json:"timeUnixNano"`
	AsInt             *string  `json:"asInt,omitempty"`
	AsDouble          *float64 `json:"asDouble,omitempty"`
}

type otlpSum struct {
	DataPoints             []otlpNumberPoint `json:"dataPoints"`
	AggregationTemporality int               `json:"aggregationTemporality"`
	IsMonotonic            bool              `json:"isMonotonic"`
}

type otlpGauge struct {
	DataPoints []otlpNumberPoint `json:"dataPoints"`
}

type otlpHistogramPoint struct {
	StartTimeUnixNano string    `json:"startTimeUnixNano,omitempty"`
	TimeUnixNano      string    `json:"timeUnixNano"`
	Count             string    `json:"count"`
	Sum               float64   `json:"sum"`
	Min               *float64  `json:"min,omitempty"`
	Max               *float64  `json:"max,omitempty"`
	BucketCounts      []string  `json:"bucketCounts"`
	ExplicitBounds    []float64 `json:"explicitBounds"`
}

type otlpHistogram struct {
	DataPoints             []otlpHistogramPoint `json:"dataPoints"`
	AggregationTemporality int                  `json:"aggregationTemporality"`
}

type otlpMetric struct {
	Name      string         `json:"name"`
	Unit      string         `json:"unit,omitempty"`
	Sum       *otlpSum       `json:"sum,omitempty"`
	Gauge     *otlpGauge     `json:"gauge,omitempty"`
	Histogram *otlpHistogram `json:"histogram,omitempty"`
}

type otlpScopeMetrics struct {
	Scope   otlpScope    `json:"scope"`
	Metrics []otlpMetric `json:"metrics"`
}

type otlpResourceMetrics struct {
	Resource     otlpResource       `json:"resource"`
	ScopeMetrics []otlpScopeMetrics `json:"scopeMetrics"`
}

// otlpExport is the union envelope the file exporter writes: one JSON
// object carrying the traces payload, the metrics payload, or both.
type otlpExport struct {
	ResourceSpans   []otlpResourceSpans   `json:"resourceSpans,omitempty"`
	ResourceMetrics []otlpResourceMetrics `json:"resourceMetrics,omitempty"`
}

const (
	otlpScopeName = "boedag/internal/obs"
	// spanKindInternal is proto SpanKind SPAN_KIND_INTERNAL.
	spanKindInternal = 1
	// aggregationCumulative is AGGREGATION_TEMPORALITY_CUMULATIVE.
	aggregationCumulative = 2
)

// hexID hashes the parts into a non-zero identifier of 2n hex digits
// (n=8 for span ids, n=16 for trace ids). Deterministic, so identical
// runs export identical ids and goldens stay byte-stable.
func hexID(n int, parts ...string) string {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	v := h.Sum64()
	if v == 0 {
		v = 1 // all-zero ids are invalid in OTLP
	}
	id := fmt.Sprintf("%016x", v)
	for len(id) < 2*n {
		h.Write([]byte(id))
		id += fmt.Sprintf("%016x", h.Sum64())
	}
	return id[:2*n]
}

func unixNano(anchor time.Time, seconds float64) string {
	t := anchor.Add(time.Duration(seconds * float64(time.Second)))
	return strconv.FormatInt(t.UnixNano(), 10)
}

// spanEvent reports whether the exporter maps ev to a span.
func spanEvent(ev Event) bool {
	switch ev.Type {
	case EvTaskFinish, EvSubStageFinish, EvStageFinish, EvStateClose,
		EvRequest, EvRequestPhase:
		return true
	}
	return false
}

// SpanCount returns how many spans an OTLP export of events produces:
// one per span-shaped event (task, sub-stage, stage, workflow state).
// WriteOTLPTraces emits exactly this many, which is what the round-trip
// check in hack/verify.sh asserts.
func SpanCount(events []Event) int {
	n := 0
	for _, ev := range events {
		if spanEvent(ev) {
			n++
		}
	}
	return n
}

// buildSpans maps the span-shaped events onto OTLP spans, one trace for
// the whole run.
func buildSpans(events []Event, opt OTLPOptions) []otlpSpan {
	traceID := hexID(16, "trace", opt.Service)
	stageSpan := func(job, stage string) string { return hexID(8, "stage", job, stage) }
	taskSpan := func(job, stage string, task int) string {
		return hexID(8, "task", job, stage, strconv.Itoa(task))
	}
	spans := make([]otlpSpan, 0, SpanCount(events))
	for _, ev := range events {
		if !spanEvent(ev) {
			continue
		}
		sp := otlpSpan{
			TraceID:           traceID,
			Kind:              spanKindInternal,
			StartTimeUnixNano: unixNano(opt.Start, ev.Time),
			EndTimeUnixNano:   unixNano(opt.Start, ev.Time+ev.Dur),
		}
		switch ev.Type {
		case EvTaskFinish:
			sp.SpanID = taskSpan(ev.Job, ev.Stage, ev.Task)
			sp.ParentSpanID = stageSpan(ev.Job, ev.Stage)
			sp.Name = fmt.Sprintf("%s/%s[%d]", ev.Job, ev.Stage, ev.Task)
			sp.Attributes = []otlpKeyValue{
				strAttr("boedag.job", ev.Job),
				strAttr("boedag.stage", ev.Stage),
				intAttr("boedag.task", int64(ev.Task)),
				strAttr("boedag.bottleneck", ev.Resource),
				intAttr("boedag.node", int64(ev.Value)),
			}
		case EvSubStageFinish:
			sp.SpanID = hexID(8, "sub", ev.Job, ev.Stage, strconv.Itoa(ev.Task),
				ev.Sub, strconv.FormatFloat(ev.Time, 'g', -1, 64))
			sp.ParentSpanID = taskSpan(ev.Job, ev.Stage, ev.Task)
			sp.Name = ev.Sub
			sp.Attributes = []otlpKeyValue{
				strAttr("boedag.job", ev.Job),
				strAttr("boedag.stage", ev.Stage),
				intAttr("boedag.task", int64(ev.Task)),
				strAttr("boedag.bottleneck", ev.Resource),
			}
			// The D_X byte counts ride along (index order, zeros omitted)
			// so OTLP consumers see the same self-describing sub-stages as
			// the Chrome trace.
			for i, b := range ev.Demand {
				if b > 0 {
					sp.Attributes = append(sp.Attributes,
						floatAttr("boedag.bytes."+DemandResourceNames[i], b))
				}
			}
		case EvStageFinish:
			sp.SpanID = stageSpan(ev.Job, ev.Stage)
			sp.Name = ev.Job + "/" + ev.Stage
			sp.Attributes = []otlpKeyValue{
				strAttr("boedag.job", ev.Job),
				strAttr("boedag.stage", ev.Stage),
				strAttr("boedag.bottleneck", ev.Resource),
			}
			sp.Attributes = append(sp.Attributes,
				annAttrs(opt.Annotations.stageArgs(ev.Job, ev.Stage))...)
		case EvStateClose:
			sp.SpanID = hexID(8, "state", strconv.Itoa(ev.Seq),
				strconv.FormatFloat(ev.Time, 'g', -1, 64))
			sp.Name = fmt.Sprintf("state %d", ev.Seq)
			sp.Attributes = []otlpKeyValue{
				intAttr("boedag.state", int64(ev.Seq)),
				strAttr("boedag.running", ev.Detail),
				strAttr("boedag.dominant", ev.Resource),
				floatAttr("boedag.utilization", ev.Value),
			}
			sp.Attributes = append(sp.Attributes,
				annAttrs(opt.Annotations.stateArgs(ev.Seq))...)
		case EvRequest:
			sp.SpanID = hexID(8, "req", strconv.Itoa(ev.Seq))
			sp.Name = ev.Detail
			sp.Attributes = []otlpKeyValue{
				intAttr("boedag.request", int64(ev.Seq)),
				intAttr("http.response.status_code", int64(ev.Value)),
			}
		case EvRequestPhase:
			sp.SpanID = hexID(8, "reqphase", strconv.Itoa(ev.Seq), ev.Detail,
				strconv.FormatFloat(ev.Time, 'g', -1, 64))
			sp.ParentSpanID = hexID(8, "req", strconv.Itoa(ev.Seq))
			sp.Name = ev.Detail
			sp.Attributes = []otlpKeyValue{
				intAttr("boedag.request", int64(ev.Seq)),
				strAttr("boedag.phase", ev.Detail),
			}
		}
		spans = append(spans, sp)
	}
	return spans
}

func resourceOf(opt OTLPOptions) otlpResource {
	attrs := []otlpKeyValue{strAttr("service.name", opt.Service)}
	attrs = append(attrs, annAttrs(opt.Annotations.runArgs())...)
	return otlpResource{Attributes: attrs}
}

func tracesPayload(events []Event, opt OTLPOptions) []otlpResourceSpans {
	return []otlpResourceSpans{{
		Resource: resourceOf(opt),
		ScopeSpans: []otlpScopeSpans{{
			Scope: otlpScope{Name: otlpScopeName},
			Spans: buildSpans(events, opt),
		}},
	}}
}

// metricUnit guesses the OTLP unit from the repo's naming convention
// (every duration histogram ends in _s).
func metricUnit(name string) string {
	if strings.HasSuffix(name, "_s") {
		return "s"
	}
	return ""
}

func metricsPayload(reg *Registry, opt OTLPOptions) []otlpResourceMetrics {
	cn, gn, hn := reg.snapshot()
	start := strconv.FormatInt(opt.Start.UnixNano(), 10)
	now := start
	metrics := make([]otlpMetric, 0, len(cn)+len(gn)+len(hn))
	for _, n := range cn {
		v := strconv.FormatInt(reg.Counter(n).Value(), 10)
		metrics = append(metrics, otlpMetric{
			Name: n,
			Sum: &otlpSum{
				DataPoints:             []otlpNumberPoint{{StartTimeUnixNano: start, TimeUnixNano: now, AsInt: &v}},
				AggregationTemporality: aggregationCumulative,
				IsMonotonic:            true,
			},
		})
	}
	for _, n := range gn {
		v := reg.Gauge(n).Value()
		metrics = append(metrics, otlpMetric{
			Name:  n,
			Gauge: &otlpGauge{DataPoints: []otlpNumberPoint{{TimeUnixNano: now, AsDouble: &v}}},
		})
	}
	for _, n := range hn {
		h := reg.Histogram(n)
		counts, bounds := h.Buckets()
		bucketCounts := make([]string, len(counts))
		for i, c := range counts {
			bucketCounts[i] = strconv.FormatInt(c, 10)
		}
		minV, maxV := h.Min(), h.Max()
		metrics = append(metrics, otlpMetric{
			Name: n,
			Unit: metricUnit(n),
			Histogram: &otlpHistogram{
				DataPoints: []otlpHistogramPoint{{
					StartTimeUnixNano: start,
					TimeUnixNano:      now,
					Count:             strconv.FormatInt(h.Count(), 10),
					Sum:               h.Sum(),
					Min:               &minV,
					Max:               &maxV,
					BucketCounts:      bucketCounts,
					ExplicitBounds:    bounds,
				}},
				AggregationTemporality: aggregationCumulative,
			},
		})
	}
	return []otlpResourceMetrics{{
		Resource: resourceOf(opt),
		ScopeMetrics: []otlpScopeMetrics{{
			Scope:   otlpScope{Name: otlpScopeName},
			Metrics: metrics,
		}},
	}}
}

func writeIndented(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// WriteOTLPTraces exports the span-shaped events as an OTLP/JSON traces
// payload ({"resourceSpans": ...}) and returns the number of spans
// written (== SpanCount(events)).
func WriteOTLPTraces(w io.Writer, events []Event, opt OTLPOptions) (int, error) {
	opt = opt.withDefaults(events)
	payload := tracesPayload(events, opt)
	if err := writeIndented(w, otlpExport{ResourceSpans: payload}); err != nil {
		return 0, fmt.Errorf("obs: write otlp traces: %w", err)
	}
	return len(payload[0].ScopeSpans[0].Spans), nil
}

// WriteOTLPMetrics exports the registry as an OTLP/JSON metrics payload
// ({"resourceMetrics": ...}).
func WriteOTLPMetrics(w io.Writer, reg *Registry, opt OTLPOptions) error {
	opt = opt.withDefaults(nil)
	if err := writeIndented(w, otlpExport{ResourceMetrics: metricsPayload(reg, opt)}); err != nil {
		return fmt.Errorf("obs: write otlp metrics: %w", err)
	}
	return nil
}

// WriteOTLP exports events and registry together as one JSON object
// holding both resourceSpans and resourceMetrics — the -otlp-out file
// format of the command-line tools. Either half may be nil/empty.
func WriteOTLP(w io.Writer, events []Event, reg *Registry, opt OTLPOptions) error {
	opt = opt.withDefaults(events)
	out := otlpExport{}
	if len(events) > 0 {
		out.ResourceSpans = tracesPayload(events, opt)
	}
	if reg != nil {
		out.ResourceMetrics = metricsPayload(reg, opt)
	}
	if err := writeIndented(w, out); err != nil {
		return fmt.Errorf("obs: write otlp: %w", err)
	}
	return nil
}

// PostOTLP ships events and registry to a standard OTLP/HTTP collector:
// the traces payload POSTs to endpoint/v1/traces and the metrics payload
// to endpoint/v1/metrics, both as application/json. endpoint is the
// collector's base URL (e.g. http://localhost:4318). A nil registry or
// empty event slice skips that half.
func PostOTLP(endpoint string, events []Event, reg *Registry, opt OTLPOptions) error {
	opt = opt.withDefaults(events)
	base := strings.TrimRight(endpoint, "/")
	if len(events) > 0 {
		body := otlpExport{ResourceSpans: tracesPayload(events, opt)}
		if err := postJSON(base+"/v1/traces", body); err != nil {
			return fmt.Errorf("obs: post otlp traces: %w", err)
		}
	}
	if reg != nil {
		body := otlpExport{ResourceMetrics: metricsPayload(reg, opt)}
		if err := postJSON(base+"/v1/metrics", body); err != nil {
			return fmt.Errorf("obs: post otlp metrics: %w", err)
		}
	}
	return nil
}

func postJSON(url string, v any) error {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("%s: collector returned %s: %s", url, resp.Status, bytes.TrimSpace(snippet))
	}
	return nil
}
