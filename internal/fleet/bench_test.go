package fleet_test

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"testing"

	"boedag/internal/fleet/fleettest"
)

// BenchmarkFleetEstimate measures one request through the fleet tier: a
// 3-node in-process ring, requests round-robined across nodes, a small
// scenario mix so the steady state exercises shard routing, single-hop
// proxying, and the owner's cache rather than the estimator itself. The
// number rides in the perf ledger (hack/verify.sh fresh_ledger) so proxy
// overhead regressions trip the gate.
func BenchmarkFleetEstimate(b *testing.B) {
	c := fleettest.New(b, 3, fleettest.Options{})
	var bodies [][]byte
	for i := 1; i <= 8; i++ {
		bodies = append(bodies,
			[]byte(fmt.Sprintf(`{"workflow": "wc+ts", "options": {"micro_gb": %d}}`, i)))
	}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 8}}
	urls := c.URLs()
	// Prime every scenario so the measured loop is the routed-hit path.
	for i, body := range bodies {
		if err := benchPost(client, urls[i%len(urls)], body); err != nil {
			b.Fatalf("prime: %v", err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := benchPost(client, urls[i%len(urls)], bodies[i%len(bodies)]); err != nil {
			b.Fatalf("request %d: %v", i, err)
		}
	}
}

func benchPost(client *http.Client, base string, body []byte) error {
	resp, err := client.Post(base+"/v1/estimate", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}
