package tpch

import (
	"math"

	"boedag/internal/dag"
	"strings"
	"testing"
	"testing/quick"

	"boedag/internal/units"
)

func TestSchemaValidate(t *testing.T) {
	if err := (Schema{ScaleFactor: 80}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Schema{}).Validate(); err == nil {
		t.Fatal("zero scale factor accepted")
	}
	if err := (Schema{ScaleFactor: -2}).Validate(); err == nil {
		t.Fatal("negative scale factor accepted")
	}
}

func TestPaperSchemaIs80GB(t *testing.T) {
	s := PaperSchema()
	if s.ScaleFactor != 80 {
		t.Errorf("scale factor = %v, want 80 (§V-A)", s.ScaleFactor)
	}
	total := s.TotalBytes()
	if total < 75*units.GB || total > 95*units.GB {
		t.Errorf("total size = %v, want ≈ 80 GB", total)
	}
}

func TestTableSizesScale(t *testing.T) {
	one := Schema{ScaleFactor: 1}
	ten := Schema{ScaleFactor: 10}
	if got := ten.Bytes(Lineitem); math.Abs(float64(got-one.Bytes(Lineitem)*10)) > 1 {
		t.Errorf("lineitem does not scale: %v vs 10×%v", got, one.Bytes(Lineitem))
	}
	// Nation and region are fixed-size.
	if one.Bytes(Nation) != ten.Bytes(Nation) {
		t.Error("nation scaled with SF")
	}
	if one.Rows(Region) != ten.Rows(Region) {
		t.Error("region rows scaled with SF")
	}
	if got := ten.Rows(Orders); got != 15_000_000 {
		t.Errorf("orders rows at SF10 = %d, want 15M", got)
	}
	if got := one.Bytes(Table("bogus")); got != 0 {
		t.Errorf("unknown table bytes = %v", got)
	}
	if got := one.Rows(Table("bogus")); got != 0 {
		t.Errorf("unknown table rows = %v", got)
	}
}

func TestLineitemDominates(t *testing.T) {
	s := Schema{ScaleFactor: 1}
	tables := Tables()
	if len(tables) != 8 {
		t.Fatalf("Tables() has %d entries, want 8", len(tables))
	}
	if tables[0] != Lineitem {
		t.Errorf("largest table = %s, want lineitem", tables[0])
	}
	if float64(s.Bytes(Lineitem))/float64(s.TotalBytes()) < 0.6 {
		t.Error("lineitem should be >60% of the database")
	}
}

func TestAllQueriesCompile(t *testing.T) {
	s := PaperSchema()
	for q := 1; q <= NumQueries; q++ {
		w, err := Query(q, s)
		if err != nil {
			t.Errorf("Q%d: %v", q, err)
			continue
		}
		if err := w.Validate(); err != nil {
			t.Errorf("Q%d invalid: %v", q, err)
		}
		if w.Name != "" && !strings.HasPrefix(w.Name, "Q") {
			t.Errorf("Q%d name = %q", q, w.Name)
		}
		for _, j := range w.Jobs {
			if j.Profile.InputBytes <= 0 {
				t.Errorf("Q%d job %s has no input", q, j.ID)
			}
			if !j.Profile.Compression.Enabled {
				t.Errorf("Q%d job %s: compression off, Table I says C=Y", q, j.ID)
			}
			if j.Profile.Replicas != 3 {
				t.Errorf("Q%d job %s: replicas %d, Table I says R=3", q, j.ID, j.Profile.Replicas)
			}
		}
	}
}

func TestQueryRejectsBadNumbers(t *testing.T) {
	s := PaperSchema()
	for _, q := range []int{0, -3, 23, 100} {
		if _, err := Query(q, s); err == nil {
			t.Errorf("Q%d accepted", q)
		}
	}
	if _, err := Query(1, Schema{}); err == nil {
		t.Error("invalid schema accepted")
	}
}

func TestKnownJobCounts(t *testing.T) {
	s := PaperSchema()
	// Q21 is the paper's example: "Q21 has 9 MapReduce jobs".
	want := map[int]int{1: 2, 6: 1, 14: 2, 19: 2, 21: 9}
	for q, n := range want {
		got, err := JobCount(q, s)
		if err != nil {
			t.Fatalf("Q%d: %v", q, err)
		}
		if got != n {
			t.Errorf("Q%d compiles to %d jobs, want %d", q, got, n)
		}
	}
}

func TestJobCountsStable(t *testing.T) {
	s := PaperSchema()
	total := 0
	for q := 1; q <= NumQueries; q++ {
		n, err := JobCount(q, s)
		if err != nil {
			t.Fatal(err)
		}
		if n < 1 || n > 12 {
			t.Errorf("Q%d has %d jobs — outside a plausible Hive plan", q, n)
		}
		total += n
	}
	// The 22 plans together should be on the order of a hundred jobs.
	if total < 60 || total > 130 {
		t.Errorf("total jobs across all queries = %d", total)
	}
}

func TestDeepQueriesAreChains(t *testing.T) {
	s := PaperSchema()
	w, err := Query(21, s)
	if err != nil {
		t.Fatal(err)
	}
	order, err := w.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 9 {
		t.Fatalf("Q21 topo order has %d jobs", len(order))
	}
	// Q21's join chain makes the critical path most of the plan.
	path, hops := w.CriticalPath(func(dag.Job) float64 { return 1 })
	if hops < 6 {
		t.Errorf("Q21 critical path has %v hops (%v), want a deep chain", hops, path)
	}
}

func TestReducersForClamps(t *testing.T) {
	if got := reducersFor(0); got != 1 {
		t.Errorf("reducersFor(0) = %d, want 1", got)
	}
	if got := reducersFor(100 * units.MB); got != 1 {
		t.Errorf("reducersFor(100MB) = %d, want 1", got)
	}
	if got := reducersFor(units.GB); got != 4 {
		t.Errorf("reducersFor(1GB) = %d, want 4", got)
	}
	if got := reducersFor(units.TB); got != 99 {
		t.Errorf("reducersFor(1TB) = %d, want 99 (clamped)", got)
	}
}

func TestBuilderRelBytesPropagate(t *testing.T) {
	s := Schema{ScaleFactor: 1}
	b := newBuilder(s, "t")
	li := b.table(Lineitem)
	if li.Bytes() != s.Bytes(Lineitem) {
		t.Errorf("table rel bytes = %v", li.Bytes())
	}
	agg := b.scanAgg(li, 0.5, 0.5, 1.0)
	if agg.id == "" {
		t.Error("job rel has no producer id")
	}
	want := li.Bytes().Scale(0.5 * 0.5)
	if math.Abs(float64(agg.Bytes()-want))/float64(want) > 0.01 {
		t.Errorf("scanAgg output = %v, want %v", agg.Bytes(), want)
	}
	// join depends on both producers.
	j := b.join(agg, b.table(Orders), 1.0, 0.2)
	flow, err := b.build()
	if err != nil {
		t.Fatal(err)
	}
	last := flow.Jobs[len(flow.Jobs)-1]
	if len(last.Deps) != 1 || last.Deps[0] != agg.id {
		t.Errorf("join deps = %v, want [%s]", last.Deps, agg.id)
	}
	if j.Bytes() <= 0 {
		t.Error("join output empty")
	}
}

func TestMapJoinIsMapOnly(t *testing.T) {
	b := newBuilder(Schema{ScaleFactor: 1}, "t")
	out := b.mapJoin(b.table(Lineitem), b.table(Nation), 0.5)
	flow, err := b.build()
	if err != nil {
		t.Fatal(err)
	}
	if flow.Jobs[0].Profile.ReduceTasks != 0 {
		t.Error("map join has reducers")
	}
	if out.Bytes() <= 0 {
		t.Error("map join output empty")
	}
}

func TestSortLimitSingleReducer(t *testing.T) {
	b := newBuilder(Schema{ScaleFactor: 1}, "t")
	b.sortLimit(b.table(Customer), 0.1)
	flow, err := b.build()
	if err != nil {
		t.Fatal(err)
	}
	if flow.Jobs[0].Profile.ReduceTasks != 1 {
		t.Errorf("sort job reducers = %d, want 1", flow.Jobs[0].Profile.ReduceTasks)
	}
}

// Property: every query's total bytes processed grows monotonically with
// the scale factor.
func TestQueriesScaleMonotonically(t *testing.T) {
	f := func(q8 uint8, sf8 uint8) bool {
		q := int(q8%22) + 1
		sf := float64(sf8%40) + 1
		small, err := Query(q, Schema{ScaleFactor: sf})
		if err != nil {
			return false
		}
		big, err := Query(q, Schema{ScaleFactor: sf * 2})
		if err != nil {
			return false
		}
		return big.TotalInput() > small.TotalInput()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQueryMetadataComplete(t *testing.T) {
	for q := 1; q <= NumQueries; q++ {
		name, err := QueryName(q)
		if err != nil || name == "" {
			t.Errorf("Q%d: no name (%v)", q, err)
		}
		tables, err := QueryTables(q)
		if err != nil || len(tables) == 0 {
			t.Errorf("Q%d: no tables (%v)", q, err)
		}
		for _, tb := range tables {
			if (Schema{ScaleFactor: 1}).Bytes(tb) == 0 {
				t.Errorf("Q%d references unknown table %q", q, tb)
			}
		}
	}
	if _, err := QueryName(0); err == nil {
		t.Error("Q0 name accepted")
	}
	if _, err := QueryTables(99); err == nil {
		t.Error("Q99 tables accepted")
	}
}

func TestQueryTablesAreCopies(t *testing.T) {
	a, _ := QueryTables(5)
	a[0] = "mutated"
	b, _ := QueryTables(5)
	if b[0] == "mutated" {
		t.Error("QueryTables returned shared backing storage")
	}
}

// TestPlanShapesGolden pins every query's compiled plan shape: job count,
// root count, and depth. Any planner change must update this table
// deliberately.
func TestPlanShapesGolden(t *testing.T) {
	type shape struct{ jobs, roots, depth int }
	want := map[int]shape{
		1: {2, 1, 2}, 2: {8, 2, 6}, 3: {4, 1, 4}, 4: {3, 1, 3},
		5: {7, 2, 5}, 6: {1, 1, 1}, 7: {7, 2, 6}, 8: {8, 3, 6},
		9: {7, 2, 6}, 10: {4, 1, 4}, 11: {4, 1, 4}, 12: {3, 1, 3},
		13: {3, 1, 3}, 14: {2, 1, 2}, 15: {4, 1, 4}, 16: {4, 1, 4},
		17: {4, 1, 4}, 18: {5, 1, 5}, 19: {2, 1, 2}, 20: {7, 3, 5},
		21: {9, 4, 6}, 22: {5, 1, 5},
	}
	s := PaperSchema()
	for q := 1; q <= NumQueries; q++ {
		w, err := Query(q, s)
		if err != nil {
			t.Fatalf("Q%d: %v", q, err)
		}
		_, depth := w.CriticalPath(func(dag.Job) float64 { return 1 })
		got := shape{len(w.Jobs), len(w.Roots()), int(depth)}
		if got != want[q] {
			t.Errorf("Q%d shape = %+v, want %+v", q, got, want[q])
		}
	}
}
