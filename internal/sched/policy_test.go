package sched

import (
	"strings"
	"testing"
)

func policyReqs() []Request {
	return []Request{
		{JobID: "early", MemoryMB: 1024, VCores: 1, Pending: 200, Order: 0},
		{JobID: "late", MemoryMB: 1024, VCores: 1, Pending: 200, Order: 1},
	}
}

func TestFIFOStarvesLaterJobs(t *testing.T) {
	got := Grant(PolicyFIFO, pool(), policyReqs(), nil)
	if got["early"] != 132 {
		t.Errorf("early job granted %d, want the whole pool (132)", got["early"])
	}
	if got["late"] != 0 {
		t.Errorf("late job granted %d, want 0 under FIFO", got["late"])
	}
}

func TestFIFOSpillsOverWhenFirstIsSatisfied(t *testing.T) {
	reqs := policyReqs()
	reqs[0].Pending = 10
	got := Grant(PolicyFIFO, pool(), reqs, nil)
	if got["early"] != 10 || got["late"] != 122 {
		t.Errorf("grants = %v, want 10/122", got)
	}
}

func TestFIFOOrderTieBreaksByID(t *testing.T) {
	reqs := policyReqs()
	reqs[0].Order, reqs[1].Order = 5, 5
	got := Grant(PolicyFIFO, pool(), reqs, nil)
	if got["early"] != 132 { // "early" < "late" lexicographically
		t.Errorf("tie grants = %v", got)
	}
}

func TestFairSplitsSlotsEvenly(t *testing.T) {
	// One memory-hungry job, one light job: Fair ignores container sizes
	// and still splits slots evenly (unlike DRF).
	reqs := []Request{
		{JobID: "heavy", MemoryMB: 4096, VCores: 1, Pending: 200},
		{JobID: "light", MemoryMB: 512, VCores: 1, Pending: 200},
	}
	got := Grant(PolicyFair, pool(), reqs, nil)
	if got["heavy"] != got["light"] {
		t.Errorf("fair grants uneven: %v", got)
	}
	if got.Total() != 132 {
		t.Errorf("fair total = %d, want 132", got.Total())
	}
}

func TestFairCountsHeld(t *testing.T) {
	reqs := policyReqs()
	held := Allocation{"early": 100}
	got := Grant(PolicyFair, pool(), reqs, held)
	// 32 free slots; fairness on holdings means they all go to "late".
	if got["late"] != 32 || got["early"] != 0 {
		t.Errorf("grants = %v, want all 32 to late", got)
	}
}

func TestGrantDefaultsToDRF(t *testing.T) {
	a := Grant(PolicyDRF, pool(), policyReqs(), nil)
	b := DRF(pool(), policyReqs(), nil)
	if a["early"] != b["early"] || a["late"] != b["late"] {
		t.Errorf("Grant(PolicyDRF) = %v, DRF = %v", a, b)
	}
}

func TestPoliciesRespectCapsAndPending(t *testing.T) {
	for _, p := range Policies() {
		reqs := []Request{
			{JobID: "capped", MemoryMB: 1024, VCores: 1, Pending: 500, Cap: 7, Order: 0},
			{JobID: "short", MemoryMB: 1024, VCores: 1, Pending: 3, Order: 1},
		}
		got := Grant(p, pool(), reqs, nil)
		if got["capped"] > 7 {
			t.Errorf("%s: cap violated: %v", p, got)
		}
		if got["short"] > 3 {
			t.Errorf("%s: pending violated: %v", p, got)
		}
	}
}

func TestPoliciesRespectPools(t *testing.T) {
	tight := Pool{MemoryMB: 8 * 1024, VCores: 6, Slots: 5}
	for _, p := range Policies() {
		got := Grant(p, tight, policyReqs(), nil)
		if got.Total() > 5 {
			t.Errorf("%s over-committed slots: %v", p, got)
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	want := map[Policy]string{PolicyDRF: "drf", PolicyFIFO: "fifo", PolicyFair: "fair", PolicySPJF: "spjf"}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), s)
		}
	}
	if !strings.Contains(Policy(9).String(), "9") {
		t.Error("unknown policy string")
	}
	if len(Policies()) != len(want) {
		t.Error("Policies() incomplete")
	}
	for _, p := range Policies() {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy accepted bogus name")
	}
}
