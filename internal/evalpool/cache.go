package evalpool

import (
	"sync"
	"sync/atomic"

	"boedag/internal/obs"
)

// Cache memoizes the results of deterministic computations by canonical
// key (see signature.go). It is safe for concurrent use and
// single-flight: when several workers request the same key at once, the
// computation runs exactly once and everyone shares the result. Errors
// are cached alongside values — a deterministic computation that failed
// once will fail identically again.
type Cache[V any] struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry[V]
	// hits/misses are always tracked; the obs counters mirror them when a
	// registry is attached with WithMetrics.
	hits, misses atomic.Int64
	hitC, missC  *obs.Counter
}

type cacheEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// NewCache returns an empty cache.
func NewCache[V any]() *Cache[V] {
	return &Cache[V]{entries: make(map[string]*cacheEntry[V])}
}

// WithMetrics exports the cache's hit/miss counters into the metrics
// registry as <name>_hits / <name>_misses and returns the cache.
func (c *Cache[V]) WithMetrics(reg *obs.Registry, name string) *Cache[V] {
	if reg != nil {
		c.hitC = reg.Counter(name + "_hits")
		c.missC = reg.Counter(name + "_misses")
	}
	return c
}

// Do returns the cached result for key, computing it on first request.
// Concurrent callers with the same key block until the single in-flight
// computation finishes.
func (c *Cache[V]) Do(key string, compute func() (V, error)) (V, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry[V]{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
		if c.hitC != nil {
			c.hitC.Inc()
		}
	} else {
		c.misses.Add(1)
		if c.missC != nil {
			c.missC.Inc()
		}
	}
	e.once.Do(func() { e.val, e.err = compute() })
	return e.val, e.err
}

// Len reports how many distinct keys are cached (including in-flight).
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns how many Do calls hit respectively missed the cache.
func (c *Cache[V]) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
