package fleet_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"boedag/internal/fleet"
	"boedag/internal/fleet/fleettest"
	"boedag/internal/serve"
)

// serveTestdata resolves the serve package's conformance fixtures — the
// fleet must answer each one byte-for-byte like a single node does.
func serveTestdata(t testing.TB, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "serve", "testdata", name))
	if err != nil {
		t.Fatalf("read fixture: %v", err)
	}
	return b
}

// fixtureNames lists every *.req.json fixture with one of the sharded
// endpoint prefixes.
func fixtureNames(t testing.TB) []string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join("..", "serve", "testdata"))
	if err != nil {
		t.Fatalf("read testdata dir: %v", err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".req.json") {
			names = append(names, strings.TrimSuffix(e.Name(), ".req.json"))
		}
	}
	if len(names) < 10 {
		t.Fatalf("only %d fixtures found — wrong directory?", len(names))
	}
	return names
}

// fixturePath maps a fixture name prefix to its endpoint.
func fixturePath(name string) string {
	switch {
	case strings.HasPrefix(name, "estimate_"), strings.HasPrefix(name, "stream_"):
		return "/v1/estimate"
	case strings.HasPrefix(name, "explain_"):
		return "/v1/explain"
	case strings.HasPrefix(name, "batch_"):
		return "/v1/batch"
	case strings.HasPrefix(name, "schedule_"):
		return "/v1/schedule"
	}
	return ""
}

func post(t testing.TB, url string, body []byte) (int, []byte) {
	t.Helper()
	status, b, _, err := tryPost(url, body)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return status, b
}

func tryPost(url string, body []byte) (int, []byte, http.Header, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, b, resp.Header, nil
}

// TestFleetByteIdentity is the fleet's core promise: for every golden
// fixture, every node of a 3-node fleet answers with exactly the bytes a
// standalone server produces — same status, same body — no matter which
// node the client happened to hit.
func TestFleetByteIdentity(t *testing.T) {
	solo, err := serve.New(serve.Config{Workers: 2})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	soloTS := httptest.NewServer(solo.Handler())
	defer soloTS.Close()

	c := fleettest.New(t, 3, fleettest.Options{ServeConfig: serve.Config{Workers: 2}})
	for _, name := range fixtureNames(t) {
		path := fixturePath(name)
		if path == "" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			body := serveTestdata(t, name+".req.json")
			wantStatus, wantBody := post(t, soloTS.URL+path, body)
			for i := range c.Nodes {
				status, got := post(t, c.URL(i)+path, body)
				if status != wantStatus {
					t.Errorf("node %d: status %d, single-node %d", i, status, wantStatus)
				}
				if !bytes.Equal(got, wantBody) {
					t.Errorf("node %d response diverged from single-node bytes\ngot:  %s\nwant: %s",
						i, got, wantBody)
				}
			}
		})
	}
}

// TestFleetRouting checks the shard mechanics: exactly one node computes
// a scenario no matter which node receives it, and repeat requests hit
// that owner's cache.
func TestFleetRouting(t *testing.T) {
	c := fleettest.New(t, 3, fleettest.Options{})
	body := []byte(`{"workflow": "wc+ts", "options": {"micro_gb": 7}}`)
	for i := range c.Nodes {
		status, _ := post(t, c.URL(i)+"/v1/estimate", body)
		if status != http.StatusOK {
			t.Fatalf("node %d: status %d", i, status)
		}
	}
	computed := int64(0)
	for i, n := range c.Nodes {
		v := n.Server.Metrics().Counter("estimates_computed").Value()
		if v > 1 {
			t.Errorf("node %d ran the estimator %d times for one scenario", i, v)
		}
		computed += v
	}
	if computed != 1 {
		t.Errorf("fleet ran the estimator %d times across nodes, want exactly 1", computed)
	}
}

// TestFleetForwardedHeader pins the single-hop contract: a request
// carrying the hop header is served locally even by a non-owner, so ring
// disagreement cannot loop requests between nodes.
func TestFleetForwardedHeader(t *testing.T) {
	c := fleettest.New(t, 3, fleettest.Options{})
	body := []byte(`{"workflow": "wc+ts", "options": {"micro_gb": 9}}`)
	for i := range c.Nodes {
		req, err := http.NewRequest("POST", c.URL(i)+"/v1/estimate", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(fleet.ForwardedHeader, "test-origin")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("node %d: status %d", i, resp.StatusCode)
		}
	}
	// Every node served the pre-forwarded request itself: three computes,
	// no onward forwards.
	for i, n := range c.Nodes {
		reg := n.Server.Metrics()
		if v := reg.Counter("estimates_computed").Value(); v != 1 {
			t.Errorf("node %d computed %d times, want 1 (local serve of forwarded request)", i, v)
		}
		if v := n.Node.Metrics().Counter("fleet_forwarded").Value(); v != 0 {
			t.Errorf("node %d forwarded %d requests, want 0", i, v)
		}
		if v := n.Node.Metrics().Counter("fleet_received").Value(); v != 1 {
			t.Errorf("node %d counted %d received forwards, want 1", i, v)
		}
	}
}

// TestFleetKillOnePeer is the headline fault drill: with one node of
// three dead, every shard — including the dead node's — keeps answering
// 200 from the survivors, with no 5xx storm.
func TestFleetKillOnePeer(t *testing.T) {
	c := fleettest.New(t, 3, fleettest.Options{RetryBackoff: time.Millisecond})
	c.Kill(1)
	var bad int
	for i := 0; i < 24; i++ {
		body := []byte(fmt.Sprintf(`{"workflow": "wc", "options": {"micro_gb": %d}}`, i+1))
		for _, node := range []int{0, 2} {
			status, resp := post(t, c.URL(node)+"/v1/estimate", body)
			if status != http.StatusOK {
				bad++
				t.Errorf("node %d size %d: status %d: %s", node, i+1, status, resp)
			}
		}
	}
	if bad > 0 {
		t.Fatalf("%d requests failed with one of three nodes down", bad)
	}
}

// TestFleetPartitionDegradesLocal: a node that cannot reach any peer
// computes everything itself — the ring being down only costs cache
// locality, never availability.
func TestFleetPartitionDegradesLocal(t *testing.T) {
	c := fleettest.New(t, 3, fleettest.Options{RetryBackoff: time.Millisecond})
	c.Kill(1)
	c.Kill(2)
	for i := 0; i < 12; i++ {
		body := []byte(fmt.Sprintf(`{"workflow": "ts", "options": {"micro_gb": %d}}`, i+1))
		status, resp := post(t, c.URL(0)+"/v1/estimate", body)
		if status != http.StatusOK {
			t.Fatalf("size %d: status %d: %s", i+1, status, resp)
		}
	}
	reg := c.Nodes[0].Node.Metrics()
	if v := reg.Counter("fleet_fallback_local").Value(); v == 0 {
		t.Errorf("no fallback-local serves recorded on the surviving node")
	}
}

// TestFleetWarmRestart: stop a node cleanly (snapshot), restart it on a
// fresh address, and its first request for an owned scenario is a cache
// hit — the estimator does not run again.
func TestFleetWarmRestart(t *testing.T) {
	cacheDir := t.TempDir()
	c := fleettest.New(t, 3, fleettest.Options{
		CacheDirs:    map[int]string{1: cacheDir},
		RetryBackoff: time.Millisecond,
	})

	// Find a scenario owned by node 1 so its cache is the one that matters.
	var body []byte
	for i := 1; ; i++ {
		candidate := []byte(fmt.Sprintf(`{"workflow": "wc+ts", "options": {"micro_gb": %d}}`, i))
		key, ok := c.Nodes[0].Server.RouteKey("/v1/estimate", candidate)
		if !ok {
			t.Fatalf("no route key for candidate %d", i)
		}
		if c.Nodes[0].Node.Ring().Owner(key) == "node1" {
			body = candidate
			break
		}
		if i > 64 {
			t.Fatalf("no scenario hashed to node1 in 64 tries")
		}
	}

	status, first := post(t, c.URL(0)+"/v1/estimate", body)
	if status != http.StatusOK {
		t.Fatalf("estimate: %d", status)
	}
	if v := c.Nodes[1].Server.Metrics().Counter("estimates_computed").Value(); v != 1 {
		t.Fatalf("owner computed %d times before restart, want 1", v)
	}

	c.Stop(1)
	restarted := c.Restart(1)
	if v := restarted.Server.Metrics().Counter("cache_restored_entries").Value(); v < 1 {
		t.Fatalf("restarted node restored %d entries, want >= 1", v)
	}
	status, second := post(t, c.URL(0)+"/v1/estimate", body)
	if status != http.StatusOK {
		t.Fatalf("post-restart estimate: %d", status)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("post-restart answer diverged from the original bytes")
	}
	if v := restarted.Server.Metrics().Counter("estimates_computed").Value(); v != 0 {
		t.Errorf("restarted node ran the estimator %d times, want 0 (warm cache hit)", v)
	}
	if hits, _ := restarted.Server.CacheStats(); hits != 1 {
		t.Errorf("restarted node counted %d cache hits, want 1", hits)
	}
}

// TestFleetStreamForwarded: SSE streams survive the proxy hop — a
// stream=1 request answered via a forwarding node carries the same bytes
// as one answered by the owner directly.
func TestFleetStreamForwarded(t *testing.T) {
	c := fleettest.New(t, 3, fleettest.Options{})
	body := serveTestdata(t, "stream_wc_ts.req.json")
	var first []byte
	for i := range c.Nodes {
		status, b, hdr, err := tryPost(c.URL(i)+"/v1/estimate?stream=1", body)
		if err != nil || status != http.StatusOK {
			t.Fatalf("node %d: %d %v", i, status, err)
		}
		if ct := hdr.Get("Content-Type"); ct != "text/event-stream" {
			t.Errorf("node %d: Content-Type %q", i, ct)
		}
		if !strings.Contains(string(b), "event: result\n") {
			t.Errorf("node %d: stream has no result frame:\n%s", i, b)
		}
		if first == nil {
			first = b
		} else if !bytes.Equal(b, first) {
			t.Errorf("node %d stream diverged from node 0's bytes", i)
		}
	}
}

// TestFleetNonShardedStaysLocal: health, metrics, workflows, and batch
// requests never forward — each node answers from its own state.
func TestFleetNonShardedStaysLocal(t *testing.T) {
	c := fleettest.New(t, 2, fleettest.Options{})
	for i := range c.Nodes {
		resp, err := http.Get(c.URL(i) + "/healthz")
		if err != nil {
			t.Fatalf("healthz node %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("healthz node %d: %d", i, resp.StatusCode)
		}
		status, body := post(t, c.URL(i)+"/v1/batch",
			[]byte(`{"scenarios": [{"workflow": "wc"}]}`))
		if status != http.StatusOK {
			t.Errorf("batch node %d: %d %s", i, status, body)
		}
		var out struct {
			Results []json.RawMessage `json:"results"`
		}
		if err := json.Unmarshal(body, &out); err != nil || len(out.Results) != 1 {
			t.Errorf("batch node %d: bad response %s", i, body)
		}
		if v := c.Nodes[i].Node.Metrics().Counter("fleet_forwarded").Value(); v != 0 {
			t.Errorf("node %d forwarded a non-sharded request", i)
		}
	}
}
