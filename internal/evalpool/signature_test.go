package evalpool

import (
	"testing"
	"time"

	"boedag/internal/boe"
	"boedag/internal/cluster"
	"boedag/internal/dag"
	"boedag/internal/sched"
	"boedag/internal/simulator"
	"boedag/internal/statemodel"
	"boedag/internal/workload"
)

func sigFlow() *dag.Workflow {
	return dag.Parallel("sig",
		dag.Single(workload.WordCount(100*1024*1024*1024)),
		dag.Single(workload.TeraSort(100*1024*1024*1024)))
}

func TestResultKeyStableAndSensitive(t *testing.T) {
	spec := cluster.PaperCluster()
	base := simulator.Options{Seed: 1}
	k1 := ResultKey(spec, base, sigFlow())
	if k2 := ResultKey(spec, base, sigFlow()); k2 != k1 {
		t.Fatalf("identical inputs produced different keys: %s vs %s", k1, k2)
	}

	// Every semantically significant option must change the key — a
	// collision here would serve one configuration's result to another.
	variants := map[string]simulator.Options{
		"seed":      {Seed: 2},
		"slots":     {Seed: 1, SlotLimit: 44},
		"policy":    {Seed: 1, Policy: 1},
		"failures":  {Seed: 1, TaskFailureProb: 0.1},
		"nodeaware": {Seed: 1, NodeAware: true},
		"noskew":    {Seed: 1, DisableSkew: true},
		"overhead":  {Seed: 1, TaskStartOverhead: time.Second},
	}
	for name, opt := range variants {
		if k := ResultKey(spec, opt, sigFlow()); k == k1 {
			t.Errorf("%s variant collided with the base key", name)
		}
	}

	// Workflow identity matters too: a changed profile knob must miss.
	flow := sigFlow()
	flow.Jobs[0].Profile.ReduceTasks *= 2
	if k := ResultKey(spec, base, flow); k == k1 {
		t.Error("changed reduce-task count collided with the base key")
	}

	// A different cluster must miss.
	small := spec
	small.Nodes = 3
	if k := ResultKey(small, base, sigFlow()); k == k1 {
		t.Error("smaller cluster collided with the base key")
	}
}

func TestPlanKeySensitiveToEstimatorConfig(t *testing.T) {
	spec := cluster.PaperCluster()
	timer := &statemodel.BOETimer{Model: boe.New(spec), TaskStartOverhead: time.Second}
	est := statemodel.New(spec, timer, statemodel.Options{Mode: statemodel.NormalMode})

	k1, ok := PlanKey(est, sigFlow())
	if !ok {
		t.Fatal("BOE-timer estimator should be cacheable")
	}
	if k2, _ := PlanKey(est, sigFlow()); k2 != k1 {
		t.Fatal("identical inputs produced different keys")
	}

	other := statemodel.New(spec, timer, statemodel.Options{Mode: statemodel.MeanMode})
	if k, _ := PlanKey(other, sigFlow()); k == k1 {
		t.Error("different skew mode collided")
	}
	fifo := statemodel.New(spec, timer, statemodel.Options{Mode: statemodel.NormalMode, Policy: 1})
	if k, _ := PlanKey(fifo, sigFlow()); k == k1 {
		t.Error("different scheduling policy collided")
	}
	// The from-scratch reference path must not share cache lines with the
	// incremental default, or a cached plan could mask a divergence.
	ref := statemodel.New(spec, timer, statemodel.Options{Mode: statemodel.NormalMode, DisableIncremental: true})
	if k, _ := PlanKey(ref, sigFlow()); k == k1 {
		t.Error("from-scratch reference path collided with the incremental path")
	}
}

// TestPlanKeySensitiveToSchedulingConfig pins the scheduling additions
// to the signature: queue hierarchies, queue assignments, gang sizes,
// and predicted runtimes all change an estimator's cache key, and the
// flat (nil-hierarchy) key never aliases a hierarchical one.
func TestPlanKeySensitiveToSchedulingConfig(t *testing.T) {
	spec := cluster.PaperCluster()
	timer := &statemodel.BOETimer{Model: boe.New(spec)}
	keyFor := func(opt statemodel.Options) string {
		k, ok := PlanKey(statemodel.New(spec, timer, opt), sigFlow())
		if !ok {
			t.Fatal("BOE-timer estimator should be cacheable")
		}
		return k
	}

	flat := keyFor(statemodel.Options{})
	tree := func(prodSlots int, weight float64, limit int) *sched.Hierarchy {
		h, err := sched.NewHierarchy([]sched.QueueSpec{
			{Name: "prod", Quota: sched.QueueLimit{Slots: prodSlots}},
			{Name: "batch", Weight: weight, Limit: sched.QueueLimit{Slots: limit}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}

	base := keyFor(statemodel.Options{Hierarchy: tree(20, 2, 0)})
	if base == flat {
		t.Fatal("hierarchical options collided with the flat key")
	}
	if again := keyFor(statemodel.Options{Hierarchy: tree(20, 2, 0)}); again != base {
		t.Fatal("identical hierarchies produced different keys")
	}
	variants := map[string]statemodel.Options{
		"quota":       {Hierarchy: tree(24, 2, 0)},
		"weight":      {Hierarchy: tree(20, 3, 0)},
		"limit":       {Hierarchy: tree(20, 2, 40)},
		"queues":      {Hierarchy: tree(20, 2, 0), Queues: map[string]string{"WC/WC": "prod"}},
		"gangs":       {Hierarchy: tree(20, 2, 0), Gangs: map[string]int{"WC/WC": 4}},
		"predictions": {Hierarchy: tree(20, 2, 0), Predictions: map[string]float64{"WC/WC": 120}},
	}
	for name, opt := range variants {
		if k := keyFor(opt); k == base {
			t.Errorf("%s variant collided with the base hierarchy key", name)
		}
	}

	// Map fields hash in sorted-key order, so insertion order is
	// irrelevant — and content still distinguishes.
	a := keyFor(statemodel.Options{Queues: map[string]string{"a": "prod", "b": "batch"}})
	b := keyFor(statemodel.Options{Queues: map[string]string{"b": "batch", "a": "prod"}})
	if a != b {
		t.Error("queue-map insertion order leaked into the key")
	}
	if c := keyFor(statemodel.Options{Queues: map[string]string{"a": "batch", "b": "batch"}}); c == a {
		t.Error("different queue assignment collided")
	}

	// Sum exposes the raw hash: distinct field sequences diverge.
	h1, h2 := NewHasher(), NewHasher()
	h1.Str("ab")
	h1.Str("c")
	h2.Str("a")
	h2.Str("bc")
	if h1.Sum() == h2.Sum() {
		t.Error("field separator failed: adjacent fields aliased")
	}
}

type opaqueTimer struct{}

func (opaqueTimer) TaskDist(string, []boe.TaskGroup, int) statemodel.TaskTimeDist {
	return statemodel.TaskTimeDist{Mean: time.Second, Median: time.Second}
}

func TestPlanKeyRefusesOpaqueTimer(t *testing.T) {
	est := statemodel.New(cluster.PaperCluster(), opaqueTimer{}, statemodel.Options{})
	if _, ok := PlanKey(est, sigFlow()); ok {
		t.Fatal("an unknown TaskTimer implementation must be uncacheable")
	}
}

func TestResultCacheMemoizesAndMissesAcrossSeeds(t *testing.T) {
	spec := cluster.PaperCluster()
	cache := NewResultCache()
	flow := dag.Single(workload.WordCount(1024 * 1024 * 1024))

	r1, err := cache.Run(spec, simulator.Options{Seed: 1}, flow)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cache.Run(spec, simulator.Options{Seed: 1}, flow)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("identical run was not served from the cache")
	}
	if hits, misses := cache.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}

	// A different skew seed is a different experiment: must simulate anew.
	r3, err := cache.Run(spec, simulator.Options{Seed: 7}, flow)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Error("different seed was served the cached result")
	}
	if hits, misses := cache.Stats(); hits != 1 || misses != 2 {
		t.Errorf("stats after seed change = %d hits / %d misses, want 1/2", hits, misses)
	}
}

func TestPlanCacheBypassesOpaqueTimers(t *testing.T) {
	est := statemodel.New(cluster.PaperCluster(), opaqueTimer{}, statemodel.Options{})
	cache := NewPlanCache()
	flow := dag.Single(workload.WordCount(1024 * 1024 * 1024))
	if _, err := cache.Estimate(est, flow); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Estimate(est, flow); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 0 {
		t.Error("opaque-timer plans must not be cached")
	}
	if hits, misses := cache.Stats(); hits != 0 || misses != 0 {
		t.Errorf("bypassed calls must not count: %d/%d", hits, misses)
	}
}
