package cluster

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestSpecRoundTripsThroughJSON(t *testing.T) {
	want := PaperCluster()
	var buf bytes.Buffer
	if err := WriteSpec(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("round trip changed spec:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestSpecFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cluster.json")
	want := PaperCluster()
	if err := WriteSpecFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpecFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("file round trip changed spec: got %+v", got)
	}
}

func TestReadSpecRejectsBadInput(t *testing.T) {
	cases := []struct {
		name, input string
	}{
		{"empty", ""},
		{"not json", "nodes: 11"},
		{"typoed field", `{"Nodes":3,"DiskReadRat":5}`},
		{"invalid spec", `{"Nodes":0}`},
		{"negative slots", `{"Nodes":3,"SlotsPerNode":-1,"Node":{"Cores":2,"CoreThroughput":1,"Disks":1,"DiskReadRate":1,"DiskWriteRate":1,"NetworkRate":1,"MemoryMB":1}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadSpec(strings.NewReader(tc.input)); err == nil {
				t.Errorf("ReadSpec accepted %s", tc.name)
			}
		})
	}
}

func TestWriteSpecRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSpec(&buf, Spec{}); err == nil {
		t.Error("WriteSpec accepted the zero spec")
	}
}

func TestReadSpecFileMissing(t *testing.T) {
	if _, err := ReadSpecFile(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing file accepted")
	}
}
