package boe

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"boedag/internal/cluster"
	"boedag/internal/units"
	"boedag/internal/workload"
)

// figure4Profile builds a map-only job matching the paper's Figure 4
// worked example: 10 million 100-byte records (≈ 10000 MB) processed in a
// pipeline of disk read, network transfer, and unit-cost compute. The
// network leg is emulated with three replicas of a selectivity-0.5
// output… rather than contort a MapReduce profile, tests drive the model
// through a hand-built sub-stage via a custom profile.
func paperModel() *Model {
	return New(cluster.SingleNode(cluster.ExampleNode()))
}

// TestFigure4ViaTaskTime drives the BOE model end to end on a pure-scan
// profile shaped after Figure 4: at Δ=1 the task is CPU-bound; raising Δ
// to 5 moves the bottleneck to the shared pool.
func TestFigure4ViaTaskTime(t *testing.T) {
	m := paperModel()
	p := workload.JobProfile{
		Name:           "fig4",
		InputBytes:     10000 * units.MB,
		SplitBytes:     10000 * units.MB, // one task holds the whole input
		MapSelectivity: 0,                // no output: read + compute only
		MapCPUCost:     1,
		Replicas:       1,
	}
	one := m.TaskTime(p, workload.Map, 1)
	// CPU-bound: 10000 MB / 50 MB/s = 200 s.
	if math.Abs(one.Duration.Seconds()-200) > 1 {
		t.Errorf("Δ=1 task time = %.1fs, want 200s", one.Duration.Seconds())
	}
	if bn := one.SubStages[0].Bottleneck; bn != cluster.CPU {
		t.Errorf("Δ=1 bottleneck = %s, want cpu", bn)
	}
}

func TestTaskTimeMonotonicInParallelism(t *testing.T) {
	m := New(cluster.PaperCluster())
	p := workload.WordCount(100 * units.GB)
	prev := time.Duration(0)
	for _, d := range []int{1, 6, 12, 33, 66, 132} {
		est := m.TaskTime(p, workload.Map, d)
		if est.Duration < prev {
			t.Errorf("task time decreased at Δ=%d: %v < %v", d, est.Duration, prev)
		}
		prev = est.Duration
	}
}

func TestWordCountMapIsCPUBound(t *testing.T) {
	m := New(cluster.PaperCluster())
	est := m.TaskTime(workload.WordCount(100*units.GB), workload.Map, 132)
	if bn := est.SubStages[0].Bottleneck; bn != cluster.CPU {
		t.Errorf("WC map bottleneck = %s, want cpu (Table I)", bn)
	}
}

func TestTeraSortShuffleIsNetworkBound(t *testing.T) {
	m := New(cluster.PaperCluster())
	est := m.TaskTime(workload.TeraSort(100*units.GB), workload.Reduce, 66)
	if len(est.SubStages) < 2 {
		t.Fatalf("TS reduce has %d sub-stages, want 2", len(est.SubStages))
	}
	if bn := est.SubStages[0].Bottleneck; bn != cluster.Network {
		t.Errorf("TS shuffle bottleneck = %s, want network (Table I)", bn)
	}
}

func TestTeraSort3RReduceIsNetworkBound(t *testing.T) {
	m := New(cluster.PaperCluster())
	est := m.TaskTime(workload.TeraSort3R(100*units.GB), workload.Reduce, 66)
	last := est.SubStages[len(est.SubStages)-1]
	if last.Bottleneck != cluster.Network {
		t.Errorf("TS3R reduce bottleneck = %s, want network (3-replica HDFS write)", last.Bottleneck)
	}
}

// TestFigure1Phenomenon verifies the paper's opening observation: a
// CPU-bound job's map tasks speed up when a co-running job leaves CPU for
// the network (its shuffle), and further when the co-runner finishes.
func TestFigure1Phenomenon(t *testing.T) {
	m := New(cluster.PaperCluster())
	wc := workload.WordCount(100 * units.GB)
	ts := workload.TeraSort(100 * units.GB)

	// State A: both jobs in their map stages (66 tasks each).
	bothMaps := m.TaskTimeWith(wc, workload.Map, 66, []TaskGroup{
		{Profile: ts, Stage: workload.Map, SubStage: AggregateSubStage, Parallelism: 66},
	})
	// State B: TS moved to its shuffle sub-stage — network-bound and
	// CPU-light ("the system bottleneck becomes network I/O due to the
	// shuffle operation", §I).
	tsShuffling := m.TaskTimeWith(wc, workload.Map, 66, []TaskGroup{
		{Profile: ts, Stage: workload.Reduce, SubStage: 0, Parallelism: 66},
	})
	// State C: TS finished; WC alone.
	alone := m.TaskTime(wc, workload.Map, 66)

	if !(bothMaps.Duration >= tsShuffling.Duration && tsShuffling.Duration >= alone.Duration) {
		t.Errorf("Figure 1 ordering violated: both=%v shuffle=%v alone=%v",
			bothMaps.Duration, tsShuffling.Duration, alone.Duration)
	}
	if bothMaps.Duration <= alone.Duration {
		t.Error("co-running TS maps should slow WC maps at all")
	}
}

func TestEstimateStateReportsUtilization(t *testing.T) {
	m := New(cluster.PaperCluster())
	wc := workload.WordCount(100 * units.GB)
	ests := m.EstimateState([]TaskGroup{
		{Profile: wc, Stage: workload.Map, SubStage: 0, Parallelism: 132},
	})
	if len(ests) != 1 {
		t.Fatalf("got %d estimates", len(ests))
	}
	if u := ests[0].Utilization[cluster.CPU]; u < 0.95 {
		t.Errorf("CPU utilization = %.2f, want ≈ 1 at Δ=132 (oversubscribed)", u)
	}
	if ests[0].Duration <= 0 {
		t.Error("zero sub-stage duration")
	}
	if len(ests[0].Ops) == 0 {
		t.Error("no op estimates")
	}
}

func TestEstimateStateDoneGroup(t *testing.T) {
	m := New(cluster.PaperCluster())
	wc := workload.WordCount(units.GB)
	ests := m.EstimateState([]TaskGroup{
		{Profile: wc, Stage: workload.Map, SubStage: 99, Parallelism: 4},
	})
	if ests[0].Duration != 0 {
		t.Errorf("out-of-range sub-stage duration = %v, want 0", ests[0].Duration)
	}
}

func TestAggregateSubStageSumsDemands(t *testing.T) {
	p := workload.TeraSort(10 * units.GB)
	spec := cluster.PaperCluster()
	subs := p.ReduceSubStages(spec)
	agg := aggregate(subs)
	for _, r := range cluster.Resources() {
		want := workload.TotalDemand(subs, r)
		if got := agg.Demand(r); math.Abs(float64(got-want)) > 1 {
			t.Errorf("aggregate demand(%s) = %v, want %v", r, got, want)
		}
	}
}

func TestEqualSplitAblationDiffers(t *testing.T) {
	// A CPU-light network-heavy group next to a CPU-heavy group: the
	// equal-split model punishes the light group; max-min does not.
	spec := cluster.PaperCluster()
	heavyCPU := workload.WordCount(100 * units.GB)
	netty := workload.TeraSort(100 * units.GB)

	fair := New(spec)
	naive := &Model{Spec: spec, EqualSplit: true}

	env := []TaskGroup{{Profile: heavyCPU, Stage: workload.Map, SubStage: AggregateSubStage, Parallelism: 100}}
	f := fair.TaskTimeWith(netty, workload.Reduce, 32, env)
	n := naive.TaskTimeWith(netty, workload.Reduce, 32, env)
	if n.Duration <= f.Duration {
		t.Errorf("equal-split (%v) should over-estimate vs max-min (%v) for the CPU-light job",
			n.Duration, f.Duration)
	}
}

func TestStageTimeWaves(t *testing.T) {
	m := New(cluster.PaperCluster())
	p := workload.WordCount(10 * units.GB) // 80 map tasks
	single := m.TaskTime(p, workload.Map, 40).Duration
	two := m.StageTime(p, workload.Map, 40)
	if two != 2*single {
		t.Errorf("StageTime(Δ=40) = %v, want 2 waves × %v", two, single)
	}
	if got := m.StageTime(p, workload.Map, 0); got != 0 {
		t.Errorf("StageTime(Δ=0) = %v, want 0", got)
	}
	if got := m.StageTime(p, workload.Reduce, 66); got <= 0 {
		t.Errorf("reduce StageTime = %v, want positive", got)
	}
	mapOnly := p
	mapOnly.ReduceTasks = 0
	if got := m.StageTime(mapOnly, workload.Reduce, 10); got != 0 {
		t.Errorf("map-only reduce StageTime = %v, want 0", got)
	}
}

func TestBottlenecksDeduplicated(t *testing.T) {
	est := TaskEstimate{
		SubStages: []SubStageEstimate{
			{Bottleneck: cluster.Network},
			{Bottleneck: cluster.CPU},
			{Bottleneck: cluster.Network},
		},
	}
	got := est.Bottlenecks()
	if len(got) != 2 || got[0] != cluster.Network || got[1] != cluster.CPU {
		t.Errorf("Bottlenecks = %v", got)
	}
}

func TestTaskEstimateString(t *testing.T) {
	est := TaskEstimate{
		Stage:    workload.Reduce,
		Duration: 42 * time.Second,
		SubStages: []SubStageEstimate{
			{Bottleneck: cluster.Network},
		},
	}
	s := est.String()
	for _, want := range []string{"reduce", "42.0s", "network"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

// Property: the op-level times in a sub-stage estimate never exceed the
// sub-stage duration (pipelined ops overlap inside the bottleneck's
// window), and the bottleneck's time equals the duration.
func TestOpTimesBounded(t *testing.T) {
	m := New(cluster.PaperCluster())
	f := func(gb uint8, par uint8) bool {
		p := workload.TeraSort(units.Bytes(gb%50+1) * units.GB)
		d := int(par%132) + 1
		for _, st := range []workload.Stage{workload.Map, workload.Reduce} {
			est := m.TaskTime(p, st, d)
			for _, ss := range est.SubStages {
				maxOp := time.Duration(0)
				for _, op := range ss.Ops {
					if op.Time > ss.Duration+time.Millisecond {
						return false
					}
					if op.Time > maxOp {
						maxOp = op.Time
					}
				}
				if len(ss.Ops) > 0 && maxOp < ss.Duration-time.Duration(float64(ss.Duration)*0.01) {
					return false // bottleneck op should fill the sub-stage
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: adding a contending group never speeds up the target task.
func TestContentionNeverHelps(t *testing.T) {
	m := New(cluster.PaperCluster())
	f := func(par uint8) bool {
		d := int(par%66) + 1
		wc := workload.WordCount(50 * units.GB)
		ts := workload.TeraSort(50 * units.GB)
		alone := m.TaskTime(wc, workload.Map, d).Duration
		crowded := m.TaskTimeWith(wc, workload.Map, d, []TaskGroup{
			{Profile: ts, Stage: workload.Map, SubStage: AggregateSubStage, Parallelism: 66},
		}).Duration
		return crowded >= alone-time.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestHeadroom(t *testing.T) {
	m := New(cluster.PaperCluster())
	// TS map at high Δ: read/write/CPU all in the same ballpark → small
	// headroom; WC map: CPU dwarfs the IO ops → large headroom.
	ts := m.TaskTime(workload.TeraSort(100*units.GB), workload.Map, 132)
	wc := m.TaskTime(workload.WordCount(100*units.GB), workload.Map, 132)
	tsH := ts.SubStages[0].Headroom()
	wcH := wc.SubStages[0].Headroom()
	if tsH < 1 || wcH < 1 {
		t.Fatalf("headroom below 1: ts %.2f, wc %.2f", tsH, wcH)
	}
	if wcH <= tsH {
		t.Errorf("WC map headroom %.2f should exceed TS map's %.2f (CPU dominates WC)", wcH, tsH)
	}
	// Degenerate cases.
	if h := (SubStageEstimate{}).Headroom(); !math.IsInf(h, 1) {
		t.Errorf("empty sub-stage headroom = %v, want +Inf", h)
	}
	one := SubStageEstimate{Ops: []OpEstimate{{Time: time.Second}}}
	if h := one.Headroom(); !math.IsInf(h, 1) {
		t.Errorf("single-op headroom = %v, want +Inf", h)
	}
}

// TestTaskTimeAtMatchesTaskTimeWith pins the hot-path entry point: for
// any position of the target group, TaskTimeAt must reproduce exactly
// what TaskTimeWith computes when handed the same environment with the
// target removed — the two build the identical group sequence, so every
// float matches bitwise.
func TestTaskTimeAtMatchesTaskTimeWith(t *testing.T) {
	m := New(cluster.PaperCluster())
	groups := []TaskGroup{
		{Profile: workload.WordCount(40 * units.GB), Stage: workload.Map, SubStage: AggregateSubStage, Parallelism: 66},
		{Profile: workload.TeraSort(20 * units.GB), Stage: workload.Reduce, SubStage: AggregateSubStage, Parallelism: 33},
		{Profile: workload.WordCount(10 * units.GB), Stage: workload.Map, SubStage: AggregateSubStage, Parallelism: 12},
	}
	for self := range groups {
		env := make([]TaskGroup, 0, len(groups)-1)
		env = append(env, groups[:self]...)
		env = append(env, groups[self+1:]...)
		g := groups[self]
		want := m.TaskTimeWith(g.Profile, g.Stage, g.Parallelism, env)
		got := m.TaskTimeAt(groups, self)
		if len(got.SubStages) != len(want.SubStages) || got.Duration != want.Duration {
			t.Fatalf("self=%d: TaskTimeAt %v over %d sub-stages, TaskTimeWith %v over %d",
				self, got.Duration, len(got.SubStages), want.Duration, len(want.SubStages))
		}
		for k := range want.SubStages {
			w, g := want.SubStages[k], got.SubStages[k]
			if w.Duration != g.Duration || w.Bottleneck != g.Bottleneck || w.Utilization != g.Utilization {
				t.Errorf("self=%d sub-stage %d: got %+v, want %+v", self, k, g, w)
			}
		}
	}
	// TaskTimeAt must not mutate the caller's groups (it copies the self
	// group before sweeping its sub-stage).
	if groups[1].SubStage != AggregateSubStage {
		t.Error("TaskTimeAt mutated the caller's group sequence")
	}
}
