package boedag_test

import (
	"context"
	"strings"
	"testing"

	"boedag"
)

func TestListenAndServe(t *testing.T) {
	// A pre-cancelled context makes ListenAndServe bind, drain (nothing in
	// flight) and return immediately.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := boedag.ListenAndServe(ctx, "127.0.0.1:0", boedag.ServerConfig{}); err != nil {
		t.Fatalf("ListenAndServe: %v", err)
	}
}

func TestListenAndServeRejectsBadConfig(t *testing.T) {
	cfg := boedag.ServerConfig{Spec: boedag.ClusterSpec{Nodes: 3}} // no node capacities
	err := boedag.ListenAndServe(context.Background(), "127.0.0.1:0", cfg)
	if err == nil || !strings.Contains(err.Error(), "cluster") {
		t.Fatalf("err = %v, want cluster validation error", err)
	}
}
