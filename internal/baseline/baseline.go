// Package baseline implements the comparison cost models of the paper's
// evaluation (§V-B): profile-replay predictors in the spirit of Starfish
// [16] and MRTuner [31], plus an Ernest-style [36] regression extension.
// The paper evaluates the baselines at their documented best case — the
// ground-truth task time measured at the profiling run's degree of
// parallelism, replayed unchanged at every other parallelism. Their
// defining limitation, and the gap BOE closes, is that the replayed time
// does not respond to the degree of parallelism or to co-running jobs.
package baseline

import (
	"fmt"
	"math"
	"time"

	"boedag/internal/boe"
	"boedag/internal/profile"
	"boedag/internal/statemodel"
	"boedag/internal/units"
	"boedag/internal/workload"
)

// ProfileReplay is the Starfish/MRTuner-style best-case model: it answers
// every task-time query with the profiled task time of the same job
// stage, regardless of the requested parallelism or co-running jobs.
type ProfileReplay struct {
	// Profiles holds the measurements of the profiling run.
	Profiles *profile.Set
	// Name labels the model in experiment tables ("Starfish/MRTuner").
	Name string
}

// NewProfileReplay returns a replay model over the given profiles.
func NewProfileReplay(p *profile.Set) *ProfileReplay {
	return &ProfileReplay{Profiles: p, Name: "Starfish/MRTuner"}
}

// TaskTime returns the profiled median task time of (job, stage); the
// parallelism argument is deliberately ignored — that is the baseline's
// documented behaviour.
func (m *ProfileReplay) TaskTime(job string, st workload.Stage, parallelism int) (time.Duration, error) {
	p, ok := m.Profiles.Stage(job, st)
	if !ok {
		return 0, fmt.Errorf("baseline: no profile for %s/%s", job, st)
	}
	_ = parallelism
	return p.Median(), nil
}

// TaskDist implements statemodel.TaskTimer so the replay model can drive
// the state-based estimator as an end-to-end baseline.
func (m *ProfileReplay) TaskDist(jobID string, groups []boe.TaskGroup, self int) statemodel.TaskTimeDist {
	p, ok := m.Profiles.Stage(jobID, groups[self].Stage)
	if !ok {
		return statemodel.TaskTimeDist{}
	}
	return statemodel.TaskTimeDist{Mean: p.Mean(), Median: p.Median(), Std: p.StdDev()}
}

var _ statemodel.TaskTimer = (*ProfileReplay)(nil)

// Ernest is a scaling-law regression in the spirit of Venkataraman et
// al.'s Ernest: task time is fitted as
//
//	t(Δ) = a + b/Δ + c·Δ
//
// over a handful of training points (optimal-experiment-design in the
// original; a small fixed design here). Like the original it models a
// single job in isolation — it has no term for co-running jobs, which is
// why it mispredicts parallel-job states.
type Ernest struct {
	a, b, c float64
	trained bool
}

// TrainingPoint is one (Δ, task time) observation.
type TrainingPoint struct {
	Parallelism int
	TaskTime    time.Duration
}

// Fit solves the least-squares coefficients from the training points.
// It needs at least three points with distinct parallelisms.
func (e *Ernest) Fit(points []TrainingPoint) error {
	if len(points) < 3 {
		return fmt.Errorf("baseline: ernest needs >= 3 training points, got %d", len(points))
	}
	// Normal equations for the 3-term basis [1, 1/Δ, Δ].
	var xtx [3][3]float64
	var xty [3]float64
	for _, p := range points {
		if p.Parallelism <= 0 {
			return fmt.Errorf("baseline: ernest training point with parallelism %d", p.Parallelism)
		}
		d := float64(p.Parallelism)
		x := [3]float64{1, 1 / d, d}
		y := p.TaskTime.Seconds()
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				xtx[i][j] += x[i] * x[j]
			}
			xty[i] += x[i] * y
		}
	}
	coef, ok := solve3(xtx, xty)
	if !ok {
		return fmt.Errorf("baseline: ernest design matrix is singular (need distinct parallelisms)")
	}
	e.a, e.b, e.c = coef[0], coef[1], coef[2]
	e.trained = true
	return nil
}

// Predict returns the fitted task time at the given parallelism.
func (e *Ernest) Predict(parallelism int) (time.Duration, error) {
	if !e.trained {
		return 0, fmt.Errorf("baseline: ernest model not trained")
	}
	if parallelism <= 0 {
		return 0, fmt.Errorf("baseline: parallelism must be positive")
	}
	d := float64(parallelism)
	t := e.a + e.b/d + e.c*d
	if t < 0 {
		t = 0
	}
	return units.Seconds(t), nil
}

// solve3 solves a 3×3 linear system by Gaussian elimination with partial
// pivoting; ok is false when the matrix is singular.
func solve3(a [3][3]float64, b [3]float64) ([3]float64, bool) {
	var x [3]float64
	m := a
	v := b
	for col := 0; col < 3; col++ {
		pivot := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return x, false
		}
		m[col], m[pivot] = m[pivot], m[col]
		v[col], v[pivot] = v[pivot], v[col]
		for r := col + 1; r < 3; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c < 3; c++ {
				m[r][c] -= f * m[col][c]
			}
			v[r] -= f * v[col]
		}
	}
	for r := 2; r >= 0; r-- {
		sum := v[r]
		for c := r + 1; c < 3; c++ {
			sum -= m[r][c] * x[c]
		}
		x[r] = sum / m[r][r]
	}
	return x, true
}
