package fairshare

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"boedag/internal/cluster"
	"boedag/internal/units"
)

// caps builds a capacity vector from (cpu, read, write, net) in MB/s.
func caps(cpu, read, write, net float64) [cluster.NumResources]units.Rate {
	var c [cluster.NumResources]units.Rate
	c[cluster.CPU] = units.Rate(cpu) * units.MBps
	c[cluster.DiskRead] = units.Rate(read) * units.MBps
	c[cluster.DiskWrite] = units.Rate(write) * units.MBps
	c[cluster.Network] = units.Rate(net) * units.MBps
	return c
}

const mb = float64(units.MB)

// TestFigure4SingleTask reproduces the paper's Figure 4(a): one task,
// 10 GB to read (500 MB/s), transfer (100 MB/s) and compute (50 MB/s per
// core): CPU-bound at 200 s, disk 10% and network 50% utilized.
func TestFigure4SingleTask(t *testing.T) {
	d := 10000 * mb
	c := Consumer{
		Count:       1,
		MaxRate:     (50 * mb) / d, // one core over the whole task
		CapResource: cluster.CPU,
	}
	c.Demand[cluster.DiskRead] = d
	c.Demand[cluster.Network] = d
	c.Demand[cluster.CPU] = d
	res := Allocate(caps(8*50, 500, 500, 100), []Consumer{c})

	taskTime := 1 / res.Rate[0]
	if math.Abs(taskTime-200) > 0.5 {
		t.Errorf("task time = %.1fs, want 200s (paper Figure 4a)", taskTime)
	}
	if res.Bottleneck[0] != cluster.CPU {
		t.Errorf("bottleneck = %s, want cpu", res.Bottleneck[0])
	}
	if got := res.Utilization[cluster.DiskRead]; math.Abs(got-0.10) > 0.005 {
		t.Errorf("disk utilization = %.2f, want 0.10", got)
	}
	if got := res.Utilization[cluster.Network]; math.Abs(got-0.50) > 0.005 {
		t.Errorf("network utilization = %.2f, want 0.50", got)
	}
}

// TestFigure4FiveTasks reproduces Figure 4(b): five such tasks become
// network-bound at 500 s each, with disk at 20% and network at 100%.
func TestFigure4FiveTasks(t *testing.T) {
	d := 10000 * mb
	c := Consumer{
		Count:       5,
		MaxRate:     (50 * mb) / d,
		CapResource: cluster.CPU,
	}
	c.Demand[cluster.DiskRead] = d
	c.Demand[cluster.Network] = d
	c.Demand[cluster.CPU] = d
	res := Allocate(caps(8*50, 500, 500, 100), []Consumer{c})

	taskTime := 1 / res.Rate[0]
	if math.Abs(taskTime-500) > 1 {
		t.Errorf("task time = %.1fs, want 500s (paper Figure 4b)", taskTime)
	}
	if res.Bottleneck[0] != cluster.Network {
		t.Errorf("bottleneck = %s, want network", res.Bottleneck[0])
	}
	if got := res.Utilization[cluster.DiskRead]; math.Abs(got-0.20) > 0.005 {
		t.Errorf("disk utilization = %.2f, want 0.20", got)
	}
	if got := res.Utilization[cluster.Network]; math.Abs(got-1.0) > 0.005 {
		t.Errorf("network utilization = %.2f, want 1.0", got)
	}
}

// TestLightUserNotPenalized: a consumer demanding little CPU must not be
// slowed to the heavy consumer's share — the property equal-split gets
// wrong and progressive filling gets right.
func TestLightUserNotPenalized(t *testing.T) {
	heavy := Consumer{Count: 10}
	heavy.Demand[cluster.CPU] = 100 * mb
	light := Consumer{Count: 1}
	light.Demand[cluster.CPU] = 1 * mb
	light.Demand[cluster.Network] = 100 * mb

	cp := caps(500, 1000, 1000, 100)
	fair := Allocate(cp, []Consumer{heavy, light})
	naive := EqualSplit(cp, []Consumer{heavy, light})

	// The light consumer should be network-bound under max-min fairness.
	if fair.Bottleneck[1] != cluster.Network {
		t.Errorf("light consumer bottleneck = %s, want network", fair.Bottleneck[1])
	}
	if fair.Rate[1] < naive.Rate[1] {
		t.Errorf("max-min rate %.4f < equal-split rate %.4f for light consumer",
			fair.Rate[1], naive.Rate[1])
	}
	// Max-min should give the light consumer (nearly) the full network.
	wantRate := 100 * mb / (100 * mb) // 1 task-unit per second
	if fair.Rate[1] < 0.9*wantRate {
		t.Errorf("light consumer rate = %.4f, want ≈ %.4f", fair.Rate[1], wantRate)
	}
}

func TestPerTaskCapBinds(t *testing.T) {
	c := Consumer{Count: 2, MaxRate: 0.5, CapResource: cluster.CPU}
	c.Demand[cluster.CPU] = 10 * mb
	res := Allocate(caps(1000, 0, 0, 0), []Consumer{c})
	if math.Abs(res.Rate[0]-0.5) > 1e-9 {
		t.Errorf("rate = %v, want cap 0.5", res.Rate[0])
	}
	if res.Bottleneck[0] != cluster.CPU {
		t.Errorf("bottleneck = %s, want cap resource cpu", res.Bottleneck[0])
	}
}

func TestAbsentResourcePinsConsumer(t *testing.T) {
	c := Consumer{Count: 1}
	c.Demand[cluster.Network] = mb
	res := Allocate(caps(100, 100, 100, 0), []Consumer{c})
	if res.Rate[0] != 0 {
		t.Errorf("rate = %v, want 0 for absent resource", res.Rate[0])
	}
	if res.Bottleneck[0] != cluster.Network {
		t.Errorf("bottleneck = %s, want network", res.Bottleneck[0])
	}
}

func TestZeroCountConsumerIgnored(t *testing.T) {
	a := Consumer{Count: 0}
	a.Demand[cluster.CPU] = mb
	b := Consumer{Count: 1}
	b.Demand[cluster.CPU] = mb
	res := Allocate(caps(100, 0, 0, 0), []Consumer{a, b})
	if res.Rate[0] != 0 {
		t.Errorf("zero-count consumer got rate %v", res.Rate[0])
	}
	if res.Rate[1] <= 0 {
		t.Errorf("real consumer starved: rate %v", res.Rate[1])
	}
}

func TestTwoGroupsShareBottleneckEqually(t *testing.T) {
	a := Consumer{Count: 3}
	a.Demand[cluster.Network] = mb
	b := Consumer{Count: 3}
	b.Demand[cluster.Network] = mb
	res := Allocate(caps(0, 0, 0, 60), []Consumer{a, b})
	if math.Abs(res.Rate[0]-res.Rate[1]) > 1e-9 {
		t.Errorf("equal consumers got different rates: %v vs %v", res.Rate[0], res.Rate[1])
	}
	// 6 tasks sharing 60 MB/s at 1 MB per unit → 10 units/s each.
	if math.Abs(res.Rate[0]-10) > 1e-6 {
		t.Errorf("rate = %v, want 10", res.Rate[0])
	}
	if math.Abs(res.Utilization[cluster.Network]-1) > 1e-9 {
		t.Errorf("network utilization = %v, want 1", res.Utilization[cluster.Network])
	}
}

// Property: no resource is ever allocated beyond its capacity.
func TestAllocateNeverExceedsCapacity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cp := caps(rng.Float64()*1000+1, rng.Float64()*1000+1,
			rng.Float64()*1000+1, rng.Float64()*1000+1)
		n := rng.Intn(6) + 1
		consumers := make([]Consumer, n)
		for i := range consumers {
			consumers[i].Count = rng.Intn(20) + 1
			for r := 0; r < cluster.NumResources; r++ {
				if rng.Intn(2) == 0 {
					consumers[i].Demand[r] = rng.Float64() * 100 * mb
				}
			}
			if rng.Intn(2) == 0 {
				consumers[i].MaxRate = rng.Float64()*2 + 0.01
			}
		}
		res := Allocate(cp, consumers)
		for r := 0; r < cluster.NumResources; r++ {
			if res.Utilization[r] > 1+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property (fair-queueing equilibrium): every consumer with a finite
// positive rate is either at its own per-task cap, or its bottleneck
// resource is (nearly) saturated AND its per-task usage there is maximal
// among that resource's users — nobody with a smaller share is ahead of
// it.
func TestAllocateMaxMinProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cp := caps(rng.Float64()*500+50, rng.Float64()*500+50,
			rng.Float64()*500+50, rng.Float64()*500+50)
		n := rng.Intn(5) + 1
		consumers := make([]Consumer, n)
		for i := range consumers {
			consumers[i].Count = rng.Intn(10) + 1
			got := false
			for r := 0; r < cluster.NumResources; r++ {
				if rng.Intn(2) == 0 {
					consumers[i].Demand[r] = rng.Float64()*50*mb + mb
					got = true
				}
			}
			if !got {
				consumers[i].Demand[cluster.CPU] = mb
			}
			consumers[i].MaxRate = rng.Float64()*5 + 0.1
			consumers[i].CapResource = cluster.CPU
		}
		res := Allocate(cp, consumers)
		for i, c := range consumers {
			rate := res.Rate[i]
			if rate <= 0 || math.IsInf(rate, 1) {
				continue
			}
			if c.MaxRate > 0 && rate >= c.MaxRate*(1-1e-6) {
				continue // at own cap
			}
			bn := res.Bottleneck[i]
			if c.Demand[bn] <= 0 {
				return false // bottlenecked on a resource it does not use
			}
			if res.Utilization[bn] < 1-1e-6 {
				return false // bottlenecked on an unsaturated resource
			}
			// Per-task usage at the bottleneck must be maximal there.
			myUse := c.Demand[bn] * rate
			for j, other := range consumers {
				if j == i || res.Rate[j] <= 0 || math.IsInf(res.Rate[j], 1) {
					continue
				}
				if other.Demand[bn]*res.Rate[j] > myUse*(1+1e-6) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEqualSplitUtilization(t *testing.T) {
	a := Consumer{Count: 2}
	a.Demand[cluster.Network] = mb
	res := EqualSplit(caps(0, 0, 0, 10), []Consumer{a})
	if math.Abs(res.Rate[0]-5) > 1e-9 {
		t.Errorf("equal-split rate = %v, want 5", res.Rate[0])
	}
	if math.Abs(res.Utilization[cluster.Network]-1) > 1e-9 {
		t.Errorf("utilization = %v, want 1", res.Utilization[cluster.Network])
	}
}

func TestEqualSplitAbsentResource(t *testing.T) {
	a := Consumer{Count: 1}
	a.Demand[cluster.DiskRead] = mb
	res := EqualSplit(caps(100, 0, 0, 0), []Consumer{a})
	if res.Rate[0] != 0 {
		t.Errorf("rate = %v, want 0", res.Rate[0])
	}
}

func TestEqualSplitRespectsCap(t *testing.T) {
	a := Consumer{Count: 1, MaxRate: 0.25, CapResource: cluster.CPU}
	a.Demand[cluster.CPU] = mb
	res := EqualSplit(caps(100, 0, 0, 0), []Consumer{a})
	if math.Abs(res.Rate[0]-0.25) > 1e-9 {
		t.Errorf("rate = %v, want cap 0.25", res.Rate[0])
	}
}

// TestVecMatchesScalarOnSameProblem: AllocateVec on a 4-resource space
// must agree with the fixed-width Allocate.
func TestVecMatchesScalarOnSameProblem(t *testing.T) {
	cp := caps(300, 200, 200, 125)
	a := Consumer{Count: 6, MaxRate: 0.4, CapResource: cluster.CPU}
	a.Demand[cluster.CPU] = 100 * mb
	a.Demand[cluster.DiskRead] = 128 * mb
	b := Consumer{Count: 4}
	b.Demand[cluster.Network] = 80 * mb
	b.Demand[cluster.DiskWrite] = 100 * mb

	scalar := Allocate(cp, []Consumer{a, b})

	vcaps := make([]float64, cluster.NumResources)
	for r := 0; r < cluster.NumResources; r++ {
		vcaps[r] = float64(cp[r])
	}
	toVec := func(c Consumer) VecConsumer {
		v := VecConsumer{Count: c.Count, MaxRate: c.MaxRate, Demand: make([]float64, cluster.NumResources)}
		copy(v.Demand, c.Demand[:])
		return v
	}
	vec := AllocateVec(vcaps, []VecConsumer{toVec(a), toVec(b)})
	for i := range scalar.Rate {
		if math.Abs(vec.Rate[i]-scalar.Rate[i]) > 1e-9*math.Max(1, scalar.Rate[i]) {
			t.Errorf("consumer %d: vec rate %v != scalar rate %v", i, vec.Rate[i], scalar.Rate[i])
		}
	}
	for r := 0; r < cluster.NumResources; r++ {
		if math.Abs(vec.Utilization[r]-scalar.Utilization[r]) > 1e-9 {
			t.Errorf("resource %d: utilization %v != %v", r, vec.Utilization[r], scalar.Utilization[r])
		}
	}
}

func TestVecDisjointResourceGroupsIndependent(t *testing.T) {
	// Two "nodes" with private CPU pools: each group saturates its own.
	caps := []float64{100, 100}
	a := VecConsumer{Count: 2, Demand: []float64{10, 0}}
	b := VecConsumer{Count: 5, Demand: []float64{0, 10}}
	res := AllocateVec(caps, []VecConsumer{a, b})
	if math.Abs(res.Rate[0]-5) > 1e-9 { // 100/(2×10)
		t.Errorf("group a rate %v, want 5", res.Rate[0])
	}
	if math.Abs(res.Rate[1]-2) > 1e-9 { // 100/(5×10)
		t.Errorf("group b rate %v, want 2", res.Rate[1])
	}
	if res.Bottleneck[0] != 0 || res.Bottleneck[1] != 1 {
		t.Errorf("bottlenecks = %v", res.Bottleneck)
	}
}

func TestVecAbsentResourceAndCaps(t *testing.T) {
	caps := []float64{0, 100}
	dead := VecConsumer{Count: 1, Demand: []float64{1, 0}}
	capped := VecConsumer{Count: 1, Demand: []float64{0, 1}, MaxRate: 3}
	res := AllocateVec(caps, []VecConsumer{dead, capped})
	if res.Rate[0] != 0 {
		t.Errorf("dead consumer rate %v", res.Rate[0])
	}
	if res.Rate[1] != 3 {
		t.Errorf("capped consumer rate %v, want its cap 3", res.Rate[1])
	}
	if res.Bottleneck[1] != -1 {
		t.Errorf("cap bottleneck index = %d, want -1", res.Bottleneck[1])
	}
}

func TestVecShortDemandSlices(t *testing.T) {
	caps := []float64{50, 50, 50}
	c := VecConsumer{Count: 1, Demand: []float64{10}} // shorter than caps
	res := AllocateVec(caps, []VecConsumer{c})
	if math.Abs(res.Rate[0]-5) > 1e-9 {
		t.Errorf("rate = %v, want 5", res.Rate[0])
	}
	if res.Utilization[1] != 0 || res.Utilization[2] != 0 {
		t.Error("unused resources show utilization")
	}
}
