package sched

import (
	"fmt"
	"math"
	"sort"
)

// This file simulates a multi-tenant *stream* of workflows arriving at a
// shared cluster — the fleet-level view one level above the per-state
// container allocator. Each job is malleable (the paper's model: a DAG
// workflow's rate scales with the containers it holds, up to its maximal
// degree of parallelism), so the scheduler re-divides the pool at every
// arrival and completion and each job progresses at the rate of its
// grant. Work is measured in slot-seconds, derived from an estimator
// plan (Σ over states of Δ·duration); Predicted is the estimator's
// standalone makespan. That is what "estimator-in-the-loop" means here:
// the predictive policies consume numbers the BOE estimator produced,
// and both the admission test and the reclaim order are driven by them.

// StreamJob is one workflow in the arrival stream.
type StreamJob struct {
	// ID identifies the job (unique per stream).
	ID string
	// Submit is the arrival time in seconds.
	Submit float64
	// Work is the total demand in slot-seconds (estimator: Σ Δ·duration).
	Work float64
	// MaxParallelism caps the slots the job can use at once (estimator:
	// max over states of Δ).
	MaxParallelism int
	// MemoryMB and VCores are the per-container shape (DRF's axes).
	MemoryMB int
	VCores   int
	// Predicted is the estimator's standalone makespan in seconds; the
	// predictive policies order and admit by it. Zero = no prediction.
	Predicted float64
	// Deadline is the absolute SLO completion time in seconds (0 = none).
	Deadline float64
	// Queue names the job's hierarchy queue ("" = root).
	Queue string
}

// Admission reason codes, 503-style: the deadline-aware policy rejects
// up front — with a machine-readable reason — rather than admitting work
// it predicts will miss its SLO.
const (
	// ReasonSLOInfeasible rejects a job whose predicted completion —
	// given the backlog already admitted — exceeds its deadline.
	ReasonSLOInfeasible = "slo-infeasible"
	// ReasonNeverFits rejects a job whose container shape can never be
	// granted even on an idle cluster.
	ReasonNeverFits = "never-fits"
)

// Rejection records one refused admission.
type Rejection struct {
	JobID string
	// Code is the HTTP-style status the service layer maps this to
	// (always 503: the cluster cannot serve the job its SLO).
	Code int
	// Reason is the machine-readable cause (ReasonSLOInfeasible, …).
	Reason string
	// Detail is the human-readable explanation with the numbers.
	Detail string
}

// StreamOptions selects the fleet policy.
type StreamOptions struct {
	// Policy orders the per-event slot grants (FIFO/DRF/Fair/SPJF).
	Policy Policy
	// DeadlineAdmission enables the predictive admission test: jobs whose
	// predicted completion misses their deadline are rejected at submit
	// with a 503-style reason instead of admitted to miss.
	DeadlineAdmission bool
	// Hierarchy enables hierarchical allocation with preemptive reclaim:
	// grants flow through AllocateHierarchy with the previous event's
	// allocation as held, so quota-starved queues preempt over-quota work
	// — victims ordered by predicted remaining time.
	Hierarchy *Hierarchy
}

// StreamJobResult is one job's fate.
type StreamJobResult struct {
	ID     string
	Submit float64
	// Finish is the completion time (math.Inf(1) if the job never ran to
	// completion — starved with no future capacity).
	Finish float64
	// Standalone is the job's runtime alone on the cluster: Work divided
	// by the slots it could use. Slowdown = response time / standalone.
	Standalone float64
	Slowdown   float64
	// Rejected marks deadline-admission refusals (Reason/Detail say why).
	Rejected bool
	Reason   string
	Detail   string
	// Missed marks admitted jobs that finished after their deadline.
	Missed bool
	// Preemptions counts slots revoked from this job while it still had
	// work left (grant decreases between events + hierarchy evictions).
	Preemptions int
}

// StreamResult aggregates one run of the stream.
type StreamResult struct {
	Jobs []StreamJobResult
	// Makespan is the last completion time across admitted jobs.
	Makespan float64
	// P95Slowdown is the 95th-percentile slowdown over admitted jobs.
	P95Slowdown float64
	// MeanSlowdown is the arithmetic mean slowdown over admitted jobs.
	MeanSlowdown float64
	// SLOMissRate is missed deadlines / jobs with deadlines (admitted
	// or rejected: a rejection of a job that would have missed anyway
	// does not count as a miss, which is the point of admission control).
	SLOMissRate float64
	Admitted    int
	Rejected    int
	Missed      int
	Preemptions int
	Rejections  []Rejection
}

// RunStream simulates the arrival stream under the chosen policy. It is
// a pure deterministic function of its inputs: same jobs, same pool,
// same options — same result, byte for byte.
func RunStream(pool Pool, jobs []StreamJob, opt StreamOptions) StreamResult {
	ordered := append([]StreamJob(nil), jobs...)
	sort.SliceStable(ordered, func(a, b int) bool {
		if ordered[a].Submit != ordered[b].Submit {
			return ordered[a].Submit < ordered[b].Submit
		}
		return ordered[a].ID < ordered[b].ID
	})

	res := StreamResult{Jobs: make([]StreamJobResult, len(ordered))}
	results := make(map[string]*StreamJobResult, len(ordered))
	for i, j := range ordered {
		res.Jobs[i] = StreamJobResult{ID: j.ID, Submit: j.Submit, Finish: math.Inf(1)}
		results[j.ID] = &res.Jobs[i]
	}

	type active struct {
		job       StreamJob
		remaining float64 // slot-seconds left
		order     int     // admission sequence (FIFO key)
		slots     int     // current grant
	}
	var running []*active
	admitted := 0
	now := 0.0
	next := 0 // next arrival index
	prevGrant := Allocation{}

	maxSlots := func(j StreamJob) int {
		m := j.MaxParallelism
		if m <= 0 || (pool.Slots > 0 && m > pool.Slots) {
			m = pool.Slots
		}
		if m <= 0 {
			m = 1
		}
		return m
	}
	standalone := func(j StreamJob) float64 {
		s := float64(maxSlots(j))
		if s <= 0 {
			s = 1
		}
		t := j.Work / s
		if t <= 0 {
			t = 1e-9
		}
		return t
	}

	// backlog is the total admitted-but-unfinished work in slot-seconds.
	backlog := func() float64 {
		w := 0.0
		for _, a := range running {
			w += a.remaining
		}
		return w
	}

	admit := func(j StreamJob) (ok bool, rej Rejection) {
		if pool.MemoryMB > 0 && j.MemoryMB > pool.MemoryMB ||
			pool.VCores > 0 && j.VCores > pool.VCores {
			return false, Rejection{JobID: j.ID, Code: 503, Reason: ReasonNeverFits,
				Detail: fmt.Sprintf("container %dMB/%dvc exceeds pool %dMB/%dvc",
					j.MemoryMB, j.VCores, pool.MemoryMB, pool.VCores)}
		}
		if !opt.DeadlineAdmission || j.Deadline <= 0 {
			return true, Rejection{}
		}
		// Predicted completion, two lower bounds: the job alone at its
		// maximal parallelism (the estimator's standalone makespan when
		// provided), and work conservation over the admitted backlog —
		// nothing finishes before (backlog+work)/slots drains.
		alone := standalone(j)
		if j.Predicted > alone {
			alone = j.Predicted
		}
		slots := float64(pool.Slots)
		if slots <= 0 {
			slots = 1
		}
		drain := (backlog() + j.Work) / slots
		bound := alone
		if drain > bound {
			bound = drain
		}
		if now+bound > j.Deadline {
			return false, Rejection{JobID: j.ID, Code: 503, Reason: ReasonSLOInfeasible,
				Detail: fmt.Sprintf("predicted completion %.1fs exceeds deadline %.1fs (now %.1fs, backlog %.0f slot-s)",
					now+bound, j.Deadline, now, backlog())}
		}
		return true, Rejection{}
	}

	// allocate re-divides the pool among running jobs under the policy.
	allocate := func() {
		reqs := make([]Request, len(running))
		for i, a := range running {
			pred := a.job.Predicted
			if opt.Hierarchy != nil && pred > 0 && a.job.Work > 0 {
				// The reclaim victim order wants predicted *remaining* time —
				// what EstimateRemaining returns at workflow granularity —
				// so scale the standalone prediction by the fraction left.
				// The flat SPJF ordering keeps the static job-level
				// prediction: equal predictions must degrade to FIFO exactly.
				pred *= a.remaining / a.job.Work
			}
			reqs[i] = Request{
				JobID:     a.job.ID,
				MemoryMB:  a.job.MemoryMB,
				VCores:    a.job.VCores,
				Pending:   maxSlots(a.job),
				Cap:       maxSlots(a.job),
				Order:     a.order,
				Queue:     a.job.Queue,
				Predicted: pred,
			}
		}
		var grant Allocation
		if opt.Hierarchy != nil {
			hr := AllocateHierarchy(pool, opt.Hierarchy, reqs, prevGrant)
			grant = make(Allocation, len(reqs))
			for _, r := range reqs {
				g := hr.Grants[r.JobID] + prevGrant[r.JobID] - hr.Evict[r.JobID]
				if g < 0 {
					g = 0
				}
				grant[r.JobID] = g
				if ev := hr.Evict[r.JobID]; ev > 0 {
					results[r.JobID].Preemptions += ev
					res.Preemptions += ev
				}
			}
		} else {
			grant = Grant(opt.Policy, pool, reqs, nil)
			for _, r := range reqs {
				if d := prevGrant[r.JobID] - grant[r.JobID]; d > 0 {
					results[r.JobID].Preemptions += d
					res.Preemptions += d
				}
			}
		}
		prevGrant = grant
		for _, a := range running {
			a.slots = grant[a.job.ID]
		}
	}

	finishJob := func(a *active) {
		r := results[a.job.ID]
		r.Finish = now
		r.Standalone = standalone(a.job)
		r.Slowdown = (now - a.job.Submit) / r.Standalone
		if r.Slowdown < 1 {
			r.Slowdown = 1 // float dust: response time ≥ standalone by construction
		}
		if a.job.Deadline > 0 && now > a.job.Deadline {
			r.Missed = true
			res.Missed++
		}
		if now > res.Makespan {
			res.Makespan = now
		}
		delete(prevGrant, a.job.ID)
	}

	for next < len(ordered) || len(running) > 0 {
		// Admit every arrival at the current time.
		if len(running) == 0 && next < len(ordered) && ordered[next].Submit > now {
			now = ordered[next].Submit
		}
		for next < len(ordered) && ordered[next].Submit <= now {
			j := ordered[next]
			next++
			ok, rej := admit(j)
			r := results[j.ID]
			if !ok {
				r.Rejected = true
				r.Reason = rej.Reason
				r.Detail = rej.Detail
				r.Finish = now
				res.Rejected++
				res.Rejections = append(res.Rejections, rej)
				continue
			}
			running = append(running, &active{job: j, remaining: j.Work, order: admitted})
			admitted++
		}

		if len(running) == 0 {
			continue
		}
		allocate()

		// Advance to the next event: the earliest completion at current
		// rates, or the next arrival, whichever comes first.
		dt := math.Inf(1)
		if next < len(ordered) {
			dt = ordered[next].Submit - now
		}
		progress := false
		for _, a := range running {
			if a.slots > 0 {
				progress = true
				if t := a.remaining / float64(a.slots); t < dt {
					dt = t
				}
			}
		}
		if !progress && next >= len(ordered) {
			// Starved forever: no job can hold a slot and nothing else will
			// arrive to change that. Mark survivors unfinished and stop.
			break
		}
		if math.IsInf(dt, 1) {
			break
		}
		now += dt
		live := running[:0]
		for _, a := range running {
			a.remaining -= float64(a.slots) * dt
			if a.remaining <= 1e-9 {
				finishJob(a)
			} else {
				live = append(live, a)
			}
		}
		running = live
	}

	// Aggregate over admitted jobs.
	var slowdowns []float64
	deadlines := 0
	for i := range res.Jobs {
		r := &res.Jobs[i]
		if r.Rejected {
			continue
		}
		res.Admitted++
		if !math.IsInf(r.Finish, 1) {
			slowdowns = append(slowdowns, r.Slowdown)
		}
	}
	for _, j := range jobs {
		if j.Deadline > 0 {
			deadlines++
		}
	}
	if deadlines > 0 {
		res.SLOMissRate = float64(res.Missed) / float64(deadlines)
	}
	if len(slowdowns) > 0 {
		sort.Float64s(slowdowns)
		sum := 0.0
		for _, s := range slowdowns {
			sum += s
		}
		res.MeanSlowdown = sum / float64(len(slowdowns))
		res.P95Slowdown = percentile(slowdowns, 0.95)
	}
	return res
}

// percentile reads the q-quantile from a sorted slice (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
