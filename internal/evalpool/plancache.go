package evalpool

import (
	"boedag/internal/cluster"
	"boedag/internal/dag"
	"boedag/internal/obs"
	"boedag/internal/simulator"
	"boedag/internal/statemodel"
)

// PlanCache memoizes estimator plans by the canonical PlanKey. Consumers
// must treat returned plans as immutable — they are shared.
type PlanCache struct {
	c *Cache[*statemodel.Plan]
}

// NewPlanCache returns an empty plan cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{c: NewCache[*statemodel.Plan]()}
}

// WithMetrics exports plan_cache_hits / plan_cache_misses counters.
func (pc *PlanCache) WithMetrics(reg *obs.Registry) *PlanCache {
	pc.c.WithMetrics(reg, "plan_cache")
	return pc
}

// Estimate returns the (possibly cached) plan for the workflow under the
// given estimator. Estimators with opaque timers bypass the cache.
func (pc *PlanCache) Estimate(est *statemodel.Estimator, w *dag.Workflow) (*statemodel.Plan, error) {
	key, ok := PlanKey(est, w)
	if !ok {
		return est.Estimate(w)
	}
	return pc.c.Do(key, func() (*statemodel.Plan, error) { return est.Estimate(w) })
}

// Stats returns hit/miss counts.
func (pc *PlanCache) Stats() (hits, misses int64) { return pc.c.Stats() }

// Len reports how many distinct plans are cached.
func (pc *PlanCache) Len() int { return pc.c.Len() }

// ResultCache memoizes simulation results by the canonical ResultKey —
// sweeps that re-measure a shared baseline configuration (Figure 6's
// profiling run, FailureStudy's clean run) simulate it once. Consumers
// must treat returned results as immutable — they are shared.
type ResultCache struct {
	c *Cache[*simulator.Result]
}

// NewResultCache returns an empty result cache.
func NewResultCache() *ResultCache {
	return &ResultCache{c: NewCache[*simulator.Result]()}
}

// WithMetrics exports sim_cache_hits / sim_cache_misses counters.
func (rc *ResultCache) WithMetrics(reg *obs.Registry) *ResultCache {
	rc.c.WithMetrics(reg, "sim_cache")
	return rc
}

// Run returns the (possibly cached) simulation result for the workflow
// on the cluster under the given options.
func (rc *ResultCache) Run(spec cluster.Spec, opt simulator.Options, w *dag.Workflow) (*simulator.Result, error) {
	key := ResultKey(spec, opt, w)
	return rc.c.Do(key, func() (*simulator.Result, error) {
		return simulator.New(spec, opt).Run(w)
	})
}

// Stats returns hit/miss counts.
func (rc *ResultCache) Stats() (hits, misses int64) { return rc.c.Stats() }

// Len reports how many distinct results are cached.
func (rc *ResultCache) Len() int { return rc.c.Len() }
