// Package units defines the scalar quantities shared by every model in
// this repository: data sizes, throughput rates, and the conversions
// between them. Keeping them as named float64 types (rather than raw
// float64) makes model formulas such as t = D/θ read like the paper and
// lets the compiler catch unit mix-ups at API boundaries.
package units

import (
	"fmt"
	"time"
)

// Bytes is a data size. Negative values are invalid everywhere in this
// repository; constructors and setters must reject them.
type Bytes float64

// Common data sizes.
const (
	KB Bytes = 1 << 10
	MB Bytes = 1 << 20
	GB Bytes = 1 << 30
	TB Bytes = 1 << 40
)

// Rate is a throughput in bytes per second.
type Rate float64

// Common throughput rates. The paper quotes device speeds in decimal-ish
// megabytes; we keep binary MB for internal consistency — the models only
// ever use ratios of rates, so the convention cancels out.
const (
	KBps Rate = Rate(KB)
	MBps Rate = Rate(MB)
	GBps Rate = Rate(GB)
)

// String renders a size using the largest unit that keeps the mantissa
// readable, e.g. "1.50GB".
func (b Bytes) String() string {
	switch {
	case b >= TB:
		return fmt.Sprintf("%.2fTB", float64(b/TB))
	case b >= GB:
		return fmt.Sprintf("%.2fGB", float64(b/GB))
	case b >= MB:
		return fmt.Sprintf("%.2fMB", float64(b/MB))
	case b >= KB:
		return fmt.Sprintf("%.2fKB", float64(b/KB))
	}
	return fmt.Sprintf("%.0fB", float64(b))
}

// String renders a rate, e.g. "100.00MB/s".
func (r Rate) String() string {
	return Bytes(r).String() + "/s"
}

// Div returns the time needed to move b bytes at rate r.
// It returns +Inf-like maximal duration when r is zero so callers can use
// the result directly in max() bottleneck comparisons without a branch.
func Div(b Bytes, r Rate) time.Duration {
	if b <= 0 {
		return 0
	}
	if r <= 0 {
		return time.Duration(1<<63 - 1)
	}
	return Seconds(float64(b) / float64(r))
}

// Seconds converts a float number of seconds to a time.Duration, saturating
// instead of overflowing for absurdly large inputs.
func Seconds(s float64) time.Duration {
	const maxSec = float64(1<<63-1) / float64(time.Second)
	if s >= maxSec {
		return time.Duration(1<<63 - 1)
	}
	if s <= 0 {
		return 0
	}
	return time.Duration(s * float64(time.Second))
}

// Sec converts a duration to float seconds; the models do arithmetic in
// seconds and only convert to time.Duration at the edges.
func Sec(d time.Duration) float64 { return d.Seconds() }

// PerTask divides an aggregate rate evenly among n tasks, the μ(Δ)=1/Δ
// sharing rule from the paper's resource usage model. n <= 1 returns the
// full rate.
func (r Rate) PerTask(n int) Rate {
	if n <= 1 {
		return r
	}
	return r / Rate(n)
}

// Min returns the smaller of two rates.
func (r Rate) Min(o Rate) Rate {
	if o < r {
		return o
	}
	return r
}

// Scale multiplies a size by a dimensionless factor (e.g. a selectivity),
// clamping negative results to zero.
func (b Bytes) Scale(f float64) Bytes {
	v := Bytes(float64(b) * f)
	if v < 0 {
		return 0
	}
	return v
}
