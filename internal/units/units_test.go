package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{KB, "1.00KB"},
		{1536, "1.50KB"},
		{MB, "1.00MB"},
		{100 * MB, "100.00MB"},
		{GB, "1.00GB"},
		{2560 * MB, "2.50GB"},
		{TB, "1.00TB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestRateString(t *testing.T) {
	if got := (100 * MBps).String(); got != "100.00MB/s" {
		t.Errorf("Rate.String() = %q, want 100.00MB/s", got)
	}
}

func TestDiv(t *testing.T) {
	if got := Div(100*MB, 100*MBps); got != time.Second {
		t.Errorf("Div(100MB, 100MB/s) = %v, want 1s", got)
	}
	if got := Div(0, 100*MBps); got != 0 {
		t.Errorf("Div(0, r) = %v, want 0", got)
	}
	if got := Div(-5, 100*MBps); got != 0 {
		t.Errorf("Div(negative, r) = %v, want 0", got)
	}
	if got := Div(MB, 0); got != time.Duration(1<<63-1) {
		t.Errorf("Div(b, 0) = %v, want max duration", got)
	}
}

func TestSecondsSaturates(t *testing.T) {
	if got := Seconds(math.MaxFloat64); got != time.Duration(1<<63-1) {
		t.Errorf("Seconds(huge) = %v, want max duration", got)
	}
	if got := Seconds(-1); got != 0 {
		t.Errorf("Seconds(-1) = %v, want 0", got)
	}
	if got := Seconds(1.5); got != 1500*time.Millisecond {
		t.Errorf("Seconds(1.5) = %v, want 1.5s", got)
	}
}

func TestPerTask(t *testing.T) {
	r := 100 * MBps
	if got := r.PerTask(0); got != r {
		t.Errorf("PerTask(0) = %v, want full rate", got)
	}
	if got := r.PerTask(1); got != r {
		t.Errorf("PerTask(1) = %v, want full rate", got)
	}
	if got := r.PerTask(4); got != 25*MBps {
		t.Errorf("PerTask(4) = %v, want 25MB/s", got)
	}
}

func TestRateMin(t *testing.T) {
	a, b := 10*MBps, 20*MBps
	if got := a.Min(b); got != a {
		t.Errorf("Min picked %v, want %v", got, a)
	}
	if got := b.Min(a); got != a {
		t.Errorf("Min picked %v, want %v", got, a)
	}
}

func TestScaleClampsNegative(t *testing.T) {
	if got := Bytes(100).Scale(-2); got != 0 {
		t.Errorf("Scale(-2) = %v, want 0", got)
	}
	if got := Bytes(100).Scale(0.5); got != 50 {
		t.Errorf("Scale(0.5) = %v, want 50", got)
	}
}

// Property: Div followed by multiplying back approximately recovers the
// byte count, for sane magnitudes.
func TestDivRoundTrip(t *testing.T) {
	f := func(megs uint16, rateMegs uint16) bool {
		b := Bytes(megs) * MB
		r := Rate(rateMegs+1) * MBps // avoid zero rate
		d := Div(b, r)
		back := float64(r) * d.Seconds()
		return math.Abs(back-float64(b)) <= float64(b)*1e-6+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Seconds is monotonic for non-negative inputs.
func TestSecondsMonotonic(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := float64(a), float64(b)
		if x > y {
			x, y = y, x
		}
		return Seconds(x) <= Seconds(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSec(t *testing.T) {
	if got := Sec(1500 * time.Millisecond); got != 1.5 {
		t.Errorf("Sec(1.5s) = %v, want 1.5", got)
	}
}
