package evalpool

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"boedag/internal/obs"
)

// Cache memoizes the results of deterministic computations by canonical
// key (see signature.go). It is safe for concurrent use and
// single-flight: when several workers request the same key at once, the
// computation runs exactly once and everyone shares the result. Errors
// are cached alongside values — a deterministic computation that failed
// once will fail identically again. Panics are not cached: the panic is
// re-thrown to the caller that ran the computation, concurrent waiters
// get an error, and the entry is dropped so a later request retries.
//
// A cache is unbounded by default; WithCapacity turns on LRU eviction so
// a long-running service holds only its hot working set. Completed
// entries can be exported (Range) and re-imported (Seed), which is how
// the prediction daemon's disk-backed warm cache survives restarts (see
// internal/cachestore and serve.Config.CacheDir).
type Cache[V any] struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry[V]
	// lru orders entries most-recently-used first; each element's Value
	// is the entry's key. Maintained for every cache so Range exports in
	// recency order even when no capacity bound is set.
	lru      *list.List
	capacity int
	// hits/misses/evictions are always tracked; the obs counters mirror
	// them when a registry is attached with WithMetrics.
	hits, misses, evictions atomic.Int64
	hitC, missC, evictC     *obs.Counter
}

type cacheEntry[V any] struct {
	once sync.Once
	val  V
	err  error
	// done flips after once ran (or the entry was seeded); Range exports
	// only done entries and Do short-circuits seeded ones past the once.
	done atomic.Bool
	elem *list.Element
}

// NewCache returns an empty unbounded cache.
func NewCache[V any]() *Cache[V] {
	return &Cache[V]{entries: make(map[string]*cacheEntry[V]), lru: list.New()}
}

// WithCapacity bounds the cache to at most n entries, evicting the least
// recently used beyond that (n <= 0 leaves the cache unbounded), and
// returns the cache. Evicting an entry whose computation is still in
// flight only forgets the memoization — the running computation and its
// waiters are unaffected, and a later request recomputes.
func (c *Cache[V]) WithCapacity(n int) *Cache[V] {
	c.mu.Lock()
	c.capacity = n
	c.evictLocked()
	c.mu.Unlock()
	return c
}

// WithMetrics exports the cache's hit/miss/eviction counters into the
// metrics registry as <name>_hits / <name>_misses / <name>_evictions and
// returns the cache.
func (c *Cache[V]) WithMetrics(reg *obs.Registry, name string) *Cache[V] {
	if reg != nil {
		c.hitC = reg.Counter(name + "_hits")
		c.missC = reg.Counter(name + "_misses")
		c.evictC = reg.Counter(name + "_evictions")
	}
	return c
}

// evictLocked drops least-recently-used entries until the capacity bound
// holds. Caller holds c.mu.
func (c *Cache[V]) evictLocked() {
	if c.capacity <= 0 {
		return
	}
	for len(c.entries) > c.capacity {
		back := c.lru.Back()
		if back == nil {
			return
		}
		key := back.Value.(string)
		if e := c.entries[key]; e != nil {
			e.elem = nil
		}
		delete(c.entries, key)
		c.lru.Remove(back)
		c.evictions.Add(1)
		if c.evictC != nil {
			c.evictC.Inc()
		}
	}
}

// lookup finds or creates the entry for key and refreshes its recency.
// The second result reports whether the entry already existed.
func (c *Cache[V]) lookup(key string) (*cacheEntry[V], bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry[V]{}
		c.entries[key] = e
		e.elem = c.lru.PushFront(key)
		c.evictLocked()
	} else if e.elem != nil {
		c.lru.MoveToFront(e.elem)
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
		if c.hitC != nil {
			c.hitC.Inc()
		}
	} else {
		c.misses.Add(1)
		if c.missC != nil {
			c.missC.Inc()
		}
	}
	return e, ok
}

// drop forgets one entry (the panic path). Caller-supplied entry identity
// guards against dropping a successor under the same key.
func (c *Cache[V]) drop(key string, e *cacheEntry[V]) {
	c.mu.Lock()
	if cur := c.entries[key]; cur == e {
		delete(c.entries, key)
		if e.elem != nil {
			c.lru.Remove(e.elem)
			e.elem = nil
		}
	}
	c.mu.Unlock()
}

// Do returns the cached result for key, computing it on first request.
// Concurrent callers with the same key block until the single in-flight
// computation finishes.
func (c *Cache[V]) Do(key string, compute func() (V, error)) (V, error) {
	e, _ := c.lookup(key)
	if e.done.Load() {
		return e.val, e.err
	}
	var panicked any
	e.once.Do(func() {
		defer func() {
			if p := recover(); p != nil {
				panicked = p
				e.err = fmt.Errorf("evalpool: computation panicked: %v", p)
				c.drop(key, e)
			}
		}()
		e.val, e.err = compute()
		e.done.Store(true)
	})
	if panicked != nil {
		panic(panicked)
	}
	return e.val, e.err
}

// Seed inserts a completed entry — a value restored from a snapshot —
// without running or counting anything: a later Do for the key is a hit
// that returns val immediately. A key already present is left untouched
// (the live entry is at least as fresh as the snapshot).
func (c *Cache[V]) Seed(key string, val V) {
	e := &cacheEntry[V]{val: val}
	e.once.Do(func() {}) // burn the once so Do never recomputes
	e.done.Store(true)
	c.mu.Lock()
	if _, ok := c.entries[key]; !ok {
		c.entries[key] = e
		e.elem = c.lru.PushFront(key)
		c.evictLocked()
	}
	c.mu.Unlock()
}

// Range calls f for every completed, successful entry in recency order —
// most recently used first, so a size-bounded snapshot keeps the hot set
// when it truncates. Iteration stops early when f returns false. Entries
// still computing, cached errors, and entries evicted mid-iteration are
// skipped; values must be treated as immutable.
func (c *Cache[V]) Range(f func(key string, val V) bool) {
	c.mu.Lock()
	type pair struct {
		key string
		val V
	}
	pairs := make([]pair, 0, len(c.entries))
	for el := c.lru.Front(); el != nil; el = el.Next() {
		key := el.Value.(string)
		if e := c.entries[key]; e != nil && e.done.Load() && e.err == nil {
			pairs = append(pairs, pair{key, e.val})
		}
	}
	c.mu.Unlock()
	for _, p := range pairs {
		if !f(p.key, p.val) {
			return
		}
	}
}

// DoContext is Do with a deadline on the wait, not on the work: when ctx
// ends while the key's single-flight computation is still running —
// whether this caller started it or joined another's — DoContext returns
// ctx's error immediately and the computation keeps going in the
// background, so its result still lands in the cache for the next
// request. Hit/miss accounting is identical to Do.
func (c *Cache[V]) DoContext(ctx context.Context, key string, compute func() (V, error)) (V, error) {
	var zero V
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	type outcome struct {
		val      V
		err      error
		panicked any
	}
	done := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				done <- outcome{panicked: p}
			}
		}()
		v, err := c.Do(key, compute)
		done <- outcome{val: v, err: err}
	}()
	select {
	case o := <-done:
		if o.panicked != nil {
			// Re-throw in the caller's goroutine so its recovery middleware
			// (not this helper goroutine) owns the panic.
			panic(o.panicked)
		}
		return o.val, o.err
	case <-ctx.Done():
		return zero, ctx.Err()
	}
}

// Len reports how many distinct keys are cached (including in-flight).
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns how many Do calls hit respectively missed the cache.
func (c *Cache[V]) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Evictions reports how many entries the capacity bound has evicted.
func (c *Cache[V]) Evictions() int64 { return c.evictions.Load() }
