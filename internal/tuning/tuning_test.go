package tuning

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"boedag/internal/cluster"
	"boedag/internal/dag"
	"boedag/internal/metrics"
	"boedag/internal/simulator"
	"boedag/internal/units"
	"boedag/internal/workload"
)

func spec() cluster.Spec { return cluster.PaperCluster() }

// misconfigured returns a deliberately badly tuned TeraSort: far too few
// reducers (huge reduce tasks, no parallelism) and a tiny sort buffer
// (spill pass on every map).
func misconfigured() workload.JobProfile {
	p := workload.TeraSort(20 * units.GB)
	p.ReduceTasks = 4
	p.SortBufferBytes = 10 * units.MB
	return p
}

func TestTuneImprovesMisconfiguredJob(t *testing.T) {
	flow := dag.Single(misconfigured())
	rec, err := New(spec(), Options{}).Tune(flow)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Changes) == 0 {
		t.Fatal("tuner found nothing to change on a misconfigured job")
	}
	if rec.Improvement() < 0.2 {
		t.Errorf("improvement %.1f%% (from %v to %v), want ≥ 20%% on this setup",
			100*rec.Improvement(), rec.Baseline, rec.Estimate)
	}
	// It must have raised the reducer count.
	tuned := rec.Tuned.Jobs[0].Profile
	if tuned.ReduceTasks <= 4 {
		t.Errorf("reduce tasks still %d", tuned.ReduceTasks)
	}
	if rec.Evaluations == 0 {
		t.Error("no evaluations counted")
	}
}

// TestRecommendationValidatedBySimulator is the end-to-end check: the
// tuned configuration must actually run faster in the simulator, not just
// in the model's own opinion.
func TestRecommendationValidatedBySimulator(t *testing.T) {
	flow := dag.Single(misconfigured())
	rec, err := New(spec(), Options{}).Tune(flow)
	if err != nil {
		t.Fatal(err)
	}
	sim := simulator.New(spec(), simulator.Options{Seed: 1})
	before, err := sim.Run(flow)
	if err != nil {
		t.Fatal(err)
	}
	after, err := sim.Run(rec.Tuned)
	if err != nil {
		t.Fatal(err)
	}
	if after.Makespan >= before.Makespan {
		t.Errorf("tuned config simulated slower: %v vs %v", after.Makespan, before.Makespan)
	}
	// And the tuner's own estimate of the tuned flow should be credible.
	if acc := metrics.Accuracy(rec.Estimate, after.Makespan); acc < 0.7 {
		t.Errorf("tuner's estimate accuracy %.2f (est %v, sim %v)", acc, rec.Estimate, after.Makespan)
	}
}

func TestTuneDoesNotMutateInput(t *testing.T) {
	flow := dag.Single(misconfigured())
	orig := flow.Jobs[0].Profile
	if _, err := New(spec(), Options{}).Tune(flow); err != nil {
		t.Fatal(err)
	}
	if flow.Jobs[0].Profile != orig {
		t.Error("tuner mutated the caller's workflow")
	}
}

func TestTuneWellConfiguredJobChangesLittle(t *testing.T) {
	// The stock WordCount profile is already sensible: gains should be
	// small and the tuner must not make it worse.
	flow := dag.Single(workload.WordCount(20 * units.GB))
	rec, err := New(spec(), Options{}).Tune(flow)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Estimate > rec.Baseline {
		t.Errorf("tuning made the estimate worse: %v → %v", rec.Baseline, rec.Estimate)
	}
}

func TestKnobRestriction(t *testing.T) {
	flow := dag.Single(misconfigured())
	rec, err := New(spec(), Options{Knobs: []Knob{Compression}}).Tune(flow)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rec.Changes {
		if c.Knob != Compression {
			t.Errorf("change on knob %s despite restriction", c.Knob)
		}
	}
	if got := rec.Tuned.Jobs[0].Profile.ReduceTasks; got != 4 {
		t.Errorf("reduce tasks changed to %d despite knob restriction", got)
	}
}

func TestTuneMapOnlyJob(t *testing.T) {
	p := workload.WordCount(5 * units.GB)
	p.ReduceTasks = 0
	rec, err := New(spec(), Options{Knobs: []Knob{ReduceTasks}}).Tune(dag.Single(p))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Changes) != 0 {
		t.Errorf("reduce-task changes on a map-only job: %+v", rec.Changes)
	}
}

func TestTuneRejectsInvalidWorkflow(t *testing.T) {
	if _, err := New(spec(), Options{}).Tune(&dag.Workflow{Name: "x"}); err == nil {
		t.Fatal("invalid workflow accepted")
	}
}

func TestTuneMultiJobDAG(t *testing.T) {
	a := misconfigured()
	a.Name = "A"
	b := workload.WordCount(10 * units.GB)
	b.Name = "B"
	flow := &dag.Workflow{Name: "chain", Jobs: []dag.Job{
		{ID: "A", Profile: a},
		{ID: "B", Profile: b, Deps: []string{"A"}},
	}}
	rec, err := New(spec(), Options{}).Tune(flow)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Improvement() <= 0 {
		t.Errorf("no improvement on a DAG with a misconfigured member")
	}
	touchedA := false
	for _, c := range rec.Changes {
		if c.Job == "A" {
			touchedA = true
		}
		if c.Gain < 0 {
			t.Errorf("accepted a regression: %+v", c)
		}
	}
	if !touchedA {
		t.Error("the misconfigured job was never touched")
	}
}

func TestChangeRendering(t *testing.T) {
	c := Change{Job: "A", Knob: ReduceTasks, From: "4", To: "16", Gain: 0.3}
	if c.Knob.String() != "reduce-tasks" {
		t.Errorf("knob string = %q", c.Knob.String())
	}
	if !strings.Contains(Knob(99).String(), "99") {
		t.Error("unknown knob string")
	}
	for _, k := range AllKnobs() {
		if strings.Contains(k.String(), "knob(") {
			t.Errorf("knob %d has no name", k)
		}
	}
}

func TestSortChangesByGain(t *testing.T) {
	changes := []Change{{Gain: 0.1}, {Gain: 0.5}, {Gain: 0.3}}
	SortChangesByGain(changes)
	if changes[0].Gain != 0.5 || changes[2].Gain != 0.1 {
		t.Errorf("sorted = %+v", changes)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if len(o.Knobs) != 3 || o.MaxPasses != 3 || o.MinGain != 0.005 {
		t.Errorf("defaults = %+v", o)
	}
	if o.TaskStartOverhead != time.Second {
		t.Errorf("default overhead = %v", o.TaskStartOverhead)
	}
}

// lowParallelism returns a long job that can only use a few slots,
// leaving the cluster mostly idle while it runs.
func lowParallelism(name string) workload.JobProfile {
	p := workload.TeraSort(12 * units.GB)
	p.Name = name
	p.SplitBytes = 3 * units.GB // 4 huge map tasks
	p.ReduceTasks = 2
	return p
}

func TestOrderJobsImprovesFIFO(t *testing.T) {
	narrow := lowParallelism("narrow")
	wide := workload.WordCount(100 * units.GB)
	wide.Name = "wide"
	// Submitted wide-first, FIFO gives the wide job every slot and the
	// narrow job waits; narrow-first leaves slots for the wide job to fill.
	flow := &dag.Workflow{Name: "order", Jobs: []dag.Job{
		{ID: "wide", Profile: wide},
		{ID: "narrow", Profile: narrow},
	}}
	rec, err := New(spec(), Options{}).OrderJobs(flow)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Estimate > rec.Baseline {
		t.Errorf("ordering made it worse: %v → %v", rec.Baseline, rec.Estimate)
	}
	if rec.Improvement() < 0.05 {
		t.Errorf("improvement %.1f%% (order %v), want ≥ 5%% on this setup",
			100*rec.Improvement(), rec.Order)
	}
	if rec.Order[0] != "narrow" {
		t.Errorf("recommended order %v, want the narrow job first", rec.Order)
	}
	if rec.Evaluations < 3 {
		t.Errorf("evaluations = %d", rec.Evaluations)
	}
}

func TestOrderJobsGreedyPath(t *testing.T) {
	// Seven roots forces the greedy best-insertion branch.
	flow := &dag.Workflow{Name: "many"}
	for i := 0; i < 7; i++ {
		p := workload.WordCount(3 * units.GB)
		p.Name = fmt.Sprintf("j%d", i)
		flow.Jobs = append(flow.Jobs, dag.Job{ID: p.Name, Profile: p})
	}
	flow.Jobs[0].Profile = lowParallelism("j0")
	rec, err := New(spec(), Options{}).OrderJobs(flow)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Order) != 7 {
		t.Fatalf("order has %d entries: %v", len(rec.Order), rec.Order)
	}
	seen := map[string]bool{}
	for _, id := range rec.Order {
		if seen[id] {
			t.Fatalf("duplicate %s in order %v", id, rec.Order)
		}
		seen[id] = true
	}
	if rec.Estimate > rec.Baseline {
		t.Errorf("greedy ordering regressed: %v → %v", rec.Baseline, rec.Estimate)
	}
}

func TestOrderJobsRejections(t *testing.T) {
	tn := New(spec(), Options{})
	if _, err := tn.OrderJobs(&dag.Workflow{Name: "x"}); err == nil {
		t.Error("invalid workflow accepted")
	}
	single := dag.Single(workload.WordCount(units.GB))
	if _, err := tn.OrderJobs(single); err == nil {
		t.Error("single-root workflow accepted")
	}
}

// TestTuneParallelDeterministic is the engine's guarantee applied to the
// tuner: the recommendation is identical at every worker count, because
// candidates are compared in enumeration order regardless of completion
// order.
func TestTuneParallelDeterministic(t *testing.T) {
	flow := dag.Parallel("pair",
		dag.Single(misconfigured()),
		dag.Single(workload.WordCount(20*units.GB)))

	serial, err := New(spec(), Options{Workers: 1}).Tune(flow)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		rec, err := New(spec(), Options{Workers: workers}).Tune(flow)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Estimate != serial.Estimate || rec.Baseline != serial.Baseline {
			t.Errorf("workers=%d: estimate %v/%v, serial %v/%v",
				workers, rec.Baseline, rec.Estimate, serial.Baseline, serial.Estimate)
		}
		if len(rec.Changes) != len(serial.Changes) {
			t.Fatalf("workers=%d: %d changes, serial %d", workers, len(rec.Changes), len(serial.Changes))
		}
		for i, c := range rec.Changes {
			if c != serial.Changes[i] {
				t.Errorf("workers=%d change %d: %+v, serial %+v", workers, i, c, serial.Changes[i])
			}
		}
		for i := range rec.Tuned.Jobs {
			if rec.Tuned.Jobs[i].Profile != serial.Tuned.Jobs[i].Profile {
				t.Errorf("workers=%d: job %s tuned differently", workers, rec.Tuned.Jobs[i].ID)
			}
		}
	}
}

// TestTunePlanCacheHits: coordinate descent re-visits configurations
// across passes (the accepted value is re-scored in the next sweep), so
// the plan cache must absorb some evaluations.
func TestTunePlanCacheHits(t *testing.T) {
	rec, err := New(spec(), Options{}).Tune(dag.Single(misconfigured()))
	if err != nil {
		t.Fatal(err)
	}
	if rec.CacheHits == 0 {
		t.Error("multi-pass descent produced zero cache hits")
	}
	if rec.CacheHits >= rec.Evaluations {
		t.Errorf("cache hits %d ≥ evaluations %d", rec.CacheHits, rec.Evaluations)
	}
}

// TestTuneMatchesFromScratchReference pins the estimator's incremental
// equivalence contract end to end through the tuner: coordinate descent
// over the warm incremental path must land on the same recommendation,
// scores included, as the from-scratch reference.
func TestTuneMatchesFromScratchReference(t *testing.T) {
	flow := dag.Parallel("TUNE",
		dag.Single(misconfigured()),
		dag.Single(workload.WordCount(20*units.GB)))
	inc, err := New(spec(), Options{Workers: 4}).Tune(flow)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(spec(), Options{DisableIncremental: true}).Tune(flow)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Baseline != ref.Baseline || inc.Estimate != ref.Estimate {
		t.Errorf("scores diverged: incremental %v→%v, reference %v→%v",
			inc.Baseline, inc.Estimate, ref.Baseline, ref.Estimate)
	}
	if got, want := fmt.Sprint(inc.Changes), fmt.Sprint(ref.Changes); got != want {
		t.Errorf("changes diverged:\nincremental: %s\nreference:   %s", got, want)
	}
}
