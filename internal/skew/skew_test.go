package skew

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestZipfNormalizesMass(t *testing.T) {
	w, err := Zipf(64, 1.1, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 64 {
		t.Fatalf("got %d weights", len(w))
	}
	sum := 0.0
	for _, x := range w {
		if x < 0 {
			t.Fatalf("negative weight %v", x)
		}
		sum += x
	}
	if math.Abs(sum-64) > 1e-6 {
		t.Errorf("weights sum to %v, want 64", sum)
	}
}

func TestZipfSkewGrowsWithExponent(t *testing.T) {
	flat, err := Zipf(64, 0, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	steep, err := Zipf(64, 1.5, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if CV(steep) <= CV(flat) {
		t.Errorf("CV(s=1.5)=%v not above CV(s=0)=%v", CV(steep), CV(flat))
	}
}

func TestZipfDeterministic(t *testing.T) {
	a, _ := Zipf(16, 1.0, 0, 9)
	b, _ := Zipf(16, 1.0, 0, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different weights")
		}
	}
	c, _ := Zipf(16, 1.0, 0, 10)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds, identical weights")
	}
}

func TestZipfRejections(t *testing.T) {
	if _, err := Zipf(0, 1, 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Zipf(4, -1, 0, 1); err == nil {
		t.Error("negative exponent accepted")
	}
}

func TestCV(t *testing.T) {
	if got := CV([]float64{1, 1, 1, 1}); got != 0 {
		t.Errorf("CV(flat) = %v", got)
	}
	if got := CV([]float64{2}); got != 0 {
		t.Errorf("CV(single) = %v", got)
	}
	if got := CV(nil); got != 0 {
		t.Errorf("CV(nil) = %v", got)
	}
	// {1,3}: mean 2, sample σ = √2 → CV = √2/2.
	if got := CV([]float64{1, 3}); math.Abs(got-math.Sqrt2/2) > 1e-9 {
		t.Errorf("CV({1,3}) = %v", got)
	}
}

func TestEmpiricalStageDurationBasics(t *testing.T) {
	sec := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	tasks := []time.Duration{sec(4), sec(3), sec(2), sec(1)}
	if got := EmpiricalStageDuration(tasks, 1); got != sec(10) {
		t.Errorf("1 slot = %v, want 10s (serial)", got)
	}
	if got := EmpiricalStageDuration(tasks, 4); got != sec(4) {
		t.Errorf("4 slots = %v, want 4s (all parallel)", got)
	}
	if got := EmpiricalStageDuration(tasks, 100); got != sec(4) {
		t.Errorf("excess slots = %v, want 4s", got)
	}
	// 2 slots, list order 4,3,2,1: B frees at 3 and takes the 2 (→5),
	// A frees at 4 and takes the 1 (→5).
	if got := EmpiricalStageDuration(tasks, 2); got != sec(5) {
		t.Errorf("2 slots = %v, want 5s", got)
	}
	if got := EmpiricalStageDuration(nil, 3); got != 0 {
		t.Errorf("no tasks = %v", got)
	}
	if got := EmpiricalStageDuration(tasks, 0); got != 0 {
		t.Errorf("no slots = %v", got)
	}
}

// Property (Graham's bound): any greedy list schedule — arbitrary order
// or LPT — finishes within balanced-load + longest-task of the optimum's
// lower bound.
func TestListSchedulingGrahamBound(t *testing.T) {
	f := func(raw []uint16, slots8 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		slots := int(slots8%16) + 1
		tasks := make([]time.Duration, len(raw))
		var sum, longest time.Duration
		for i, r := range raw {
			tasks[i] = time.Duration(r+1) * time.Millisecond
			sum += tasks[i]
			if tasks[i] > longest {
				longest = tasks[i]
			}
		}
		bound := sum/time.Duration(slots) + longest + time.Microsecond
		return LPTStageDuration(tasks, slots) <= bound &&
			EmpiricalStageDuration(tasks, slots) <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// On a classic straggler-at-the-end instance LPT strictly wins: many
// short tasks followed by one huge one.
func TestLPTBeatsWorstCaseOrder(t *testing.T) {
	tasks := make([]time.Duration, 9)
	for i := range tasks {
		tasks[i] = time.Second
	}
	tasks = append(tasks, 10*time.Second) // straggler listed last
	plain := EmpiricalStageDuration(tasks, 3)
	lpt := LPTStageDuration(tasks, 3)
	if lpt >= plain {
		t.Errorf("LPT %v not better than tail-straggler order %v", lpt, plain)
	}
}

// Property: the makespan is bounded below by both the critical task and
// the perfectly balanced division, and above by the serial sum.
func TestEmpiricalStageDurationBounds(t *testing.T) {
	f := func(raw []uint16, slots8 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		slots := int(slots8%32) + 1
		var tasks []time.Duration
		var sum, longest time.Duration
		for _, r := range raw {
			d := time.Duration(r+1) * time.Millisecond
			tasks = append(tasks, d)
			sum += d
			if d > longest {
				longest = d
			}
		}
		got := EmpiricalStageDuration(tasks, slots)
		lower := longest
		if balanced := sum / time.Duration(slots); balanced > lower {
			lower = balanced
		}
		return got >= lower-time.Microsecond && got <= sum+time.Microsecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuantiles(t *testing.T) {
	sec := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	tasks := []time.Duration{sec(1), sec(2), sec(3), sec(4), sec(5)}
	qs := Quantiles(tasks, []float64{0, 0.5, 1, -1, 2})
	want := []time.Duration{sec(1), sec(3), sec(5), sec(1), sec(5)}
	for i := range want {
		if qs[i] != want[i] {
			t.Errorf("quantile %d = %v, want %v", i, qs[i], want[i])
		}
	}
	if got := Quantiles(nil, []float64{0.5}); got[0] != 0 {
		t.Errorf("empty quantile = %v", got[0])
	}
}

func TestStragglerIndex(t *testing.T) {
	sec := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	uniform := []time.Duration{sec(10), sec(10), sec(10), sec(10)}
	if got := StragglerIndex(uniform); math.Abs(got-1) > 1e-9 {
		t.Errorf("uniform straggler index = %v, want 1", got)
	}
	skewed := append(append([]time.Duration{}, uniform...), sec(100))
	if got := StragglerIndex(skewed); got <= 1 {
		t.Errorf("skewed straggler index = %v, want > 1", got)
	}
	if got := StragglerIndex(nil); got != 0 {
		t.Errorf("empty straggler index = %v", got)
	}
}
