package explain

import (
	"context"
	"time"

	"boedag/internal/boe"
	"boedag/internal/cluster"
	"boedag/internal/dag"
	"boedag/internal/evalpool"
	"boedag/internal/obs"
	"boedag/internal/statemodel"
	"boedag/internal/units"
)

// scaleRate multiplies one node throughput parameter θ_X by f, leaving
// everything else (core/disk counts, memory, slots) untouched.
func scaleRate(spec cluster.Spec, r cluster.Resource, f float64) cluster.Spec {
	switch r {
	case cluster.CPU:
		spec.Node.CoreThroughput = units.Rate(float64(spec.Node.CoreThroughput) * f)
	case cluster.DiskRead:
		spec.Node.DiskReadRate = units.Rate(float64(spec.Node.DiskReadRate) * f)
	case cluster.DiskWrite:
		spec.Node.DiskWriteRate = units.Rate(float64(spec.Node.DiskWriteRate) * f)
	case cluster.Network:
		spec.Node.NetworkRate = units.Rate(float64(spec.Node.NetworkRate) * f)
	}
	return spec
}

// sensitivity re-runs the estimator once per cluster throughput
// parameter with that rate improved by ε and reports the finite
// difference against the base makespan. Only BOE-backed estimators have
// a θ to perturb; profile-backed timers return an empty table. The
// perturbed runs fan out through evalpool (input-ordered, so the table
// is deterministic at any worker count) and, when Options.Cache is set,
// memoize through the single-flight plan cache so repeated explanations
// of the same scenario re-run nothing.
func sensitivity(ctx context.Context, est *statemodel.Estimator, flow *dag.Workflow, plan *statemodel.Plan, opt Options) ([]Sensitivity, error) {
	bt, ok := est.Timer.(*statemodel.BOETimer)
	if !ok {
		return nil, nil
	}
	resources := cluster.Resources()
	jobs := make([]func() (time.Duration, error), len(resources))
	for i, r := range resources {
		r := r
		jobs[i] = func() (time.Duration, error) {
			model := boe.New(scaleRate(bt.Model.Spec, r, 1+opt.Epsilon))
			model.EqualSplit = bt.Model.EqualSplit
			o := est.Opt
			o.Observe = obs.Options{} // perturbed runs are silent
			perturbed := statemodel.New(
				scaleRate(est.Spec, r, 1+opt.Epsilon),
				&statemodel.BOETimer{Model: model, TaskStartOverhead: bt.TaskStartOverhead},
				o,
			)
			var p *statemodel.Plan
			var err error
			if opt.Cache != nil {
				p, err = opt.Cache.Estimate(perturbed, flow)
			} else {
				p, err = perturbed.Estimate(flow)
			}
			if err != nil {
				return 0, err
			}
			return p.Makespan, nil
		}
	}
	makespans, err := evalpool.Run(ctx, jobs, opt.Workers)
	if err != nil {
		return nil, err
	}
	out := make([]Sensitivity, len(resources))
	best := -1
	for i, r := range resources {
		base := plan.Makespan.Seconds()
		pert := makespans[i].Seconds()
		out[i] = Sensitivity{
			Parameter:  r.String(),
			Epsilon:    opt.Epsilon,
			BaseS:      base,
			PerturbedS: pert,
			DeltaS:     base - pert,
			GradientS:  (pert - base) / opt.Epsilon,
		}
		if out[i].DeltaS > 0 && (best < 0 || out[i].DeltaS > out[best].DeltaS) {
			best = i
		}
	}
	if best >= 0 {
		out[best].Best = true
	}
	return out, nil
}
