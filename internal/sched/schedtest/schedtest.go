// Package schedtest generates seeded random scheduler scenarios — pools,
// queue hierarchies, request sets, held allocations, and arrival streams
// — for the property-based invariant suite, the metamorphic policy
// tests, and the fuzz corpus. Every generator is a pure function of the
// seed (splitmix64, no math/rand), so a failing case reproduces from its
// seed alone and the same corpus is identical on every platform.
//
// Future policies inherit the whole suite for free: generate a Scenario,
// allocate under the new policy, and assert the shared invariants
// (Check* helpers below).
package schedtest

import (
	"fmt"

	"boedag/internal/sched"
)

// Rand is a splitmix64 sequence generator.
type Rand struct{ state uint64 }

// New seeds a generator.
func New(seed int64) *Rand {
	return &Rand{state: uint64(seed)*0x2545f4914f6cdd1d + 0x9e3779b97f4a7c15}
}

// Uint64 advances the sequence.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	x := r.state
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Intn draws from [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 draws from [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Pool draws a sane cluster pool: 4–64 nodes of 8–64 GB and 4–16 slots.
func (r *Rand) Pool() sched.Pool {
	nodes := 4 + r.Intn(61)
	memPerNode := (8 + r.Intn(57)) * 1024
	slotsPerNode := 4 + r.Intn(13)
	return sched.Pool{
		MemoryMB: nodes * memPerNode,
		VCores:   nodes * slotsPerNode,
		Slots:    nodes * slotsPerNode,
	}
}

// Queues draws a valid two-level queue tree: 1–4 parents under the root,
// each with 0–3 children. Roughly half the queues carry slot quotas,
// weights draw from {1,2,4}, and an occasional hard limit appears.
func (r *Rand) Queues(pool sched.Pool) []sched.QueueSpec {
	var specs []sched.QueueSpec
	parents := 1 + r.Intn(4)
	for p := 0; p < parents; p++ {
		parent := fmt.Sprintf("org%d", p)
		specs = append(specs, r.queueSpec(parent, "", pool))
		for c, n := 0, r.Intn(4); c < n; c++ {
			specs = append(specs, r.queueSpec(fmt.Sprintf("%s.team%d", parent, c), parent, pool))
		}
	}
	return specs
}

func (r *Rand) queueSpec(name, parent string, pool sched.Pool) sched.QueueSpec {
	sp := sched.QueueSpec{Name: name, Parent: parent, Weight: float64(uint(1) << r.Intn(3))}
	if r.Intn(2) == 0 && pool.Slots > 0 {
		sp.Quota = sched.QueueLimit{Slots: 1 + r.Intn(pool.Slots/2+1)}
	}
	if r.Intn(4) == 0 && pool.Slots > 0 {
		sp.Limit = sched.QueueLimit{Slots: 1 + r.Intn(pool.Slots)}
	}
	return sp
}

// Requests draws n job requests shaped like the estimator's: container
// sizes from the usual YARN grid, pending counts spanning under- and
// over-subscription, occasional caps, gangs, and predictions. Queue
// names reference the given specs (some requests stay at the root).
func (r *Rand) Requests(n int, specs []sched.QueueSpec) []sched.Request {
	reqs := make([]sched.Request, n)
	for i := range reqs {
		reqs[i] = sched.Request{
			JobID:    fmt.Sprintf("job-%02d", i),
			MemoryMB: (1 + r.Intn(8)) * 1024,
			VCores:   1 + r.Intn(4),
			Pending:  1 + r.Intn(200),
			Order:    i,
		}
		if r.Intn(4) == 0 {
			reqs[i].Cap = 1 + r.Intn(32)
		}
		if r.Intn(5) == 0 {
			reqs[i].Gang = 1 + r.Intn(8)
		}
		if r.Intn(2) == 0 {
			reqs[i].Predicted = 10 + 990*r.Float64()
		}
		if len(specs) > 0 && r.Intn(3) != 0 {
			reqs[i].Queue = specs[r.Intn(len(specs))].Name
		}
	}
	return reqs
}

// Held draws an existing allocation over a subset of the requests — a
// consistent one: within each job's cap and within the pool (a real
// scheduler can only have handed out what existed), small enough to
// leave capacity contention interesting.
func (r *Rand) Held(pool sched.Pool, reqs []sched.Request) sched.Allocation {
	held := sched.Allocation{}
	mem, cpu, slots := 0, 0, 0
	for _, q := range reqs {
		if r.Intn(3) != 0 {
			continue
		}
		n := 1 + r.Intn(8)
		if q.Pending < n {
			n = q.Pending
		}
		if q.Cap > 0 && q.Cap < n {
			n = q.Cap
		}
		for n > 0 {
			if pool.MemoryMB > 0 && mem+n*q.MemoryMB > pool.MemoryMB ||
				pool.VCores > 0 && cpu+n*q.VCores > pool.VCores ||
				pool.Slots > 0 && slots+n > pool.Slots {
				n--
				continue
			}
			break
		}
		if n == 0 {
			continue
		}
		held[q.JobID] = n
		mem += n * q.MemoryMB
		cpu += n * q.VCores
		slots += n
	}
	if len(held) == 0 {
		return nil
	}
	return held
}

// Scenario is one complete allocator input.
type Scenario struct {
	Pool      sched.Pool
	Specs     []sched.QueueSpec
	Hierarchy *sched.Hierarchy // nil in roughly a quarter of scenarios (flat)
	Requests  []sched.Request
	Held      sched.Allocation
}

// Scenario draws a full allocator input from the seed.
func (r *Rand) Scenario() Scenario {
	s := Scenario{Pool: r.Pool()}
	if r.Intn(4) != 0 {
		s.Specs = r.Queues(s.Pool)
		h, err := sched.NewHierarchy(s.Specs)
		if err != nil {
			panic(err) // generator bug: Queues must always be valid
		}
		s.Hierarchy = h
	}
	s.Requests = r.Requests(1+r.Intn(12), s.Specs)
	s.Held = r.Held(s.Pool, s.Requests)
	return s
}

// Stream draws n arriving jobs with estimator-shaped work, predictions
// proportional to work (the honest-estimator baseline), and deadlines on
// roughly half.
func (r *Rand) Stream(n int, pool sched.Pool) []sched.StreamJob {
	jobs := make([]sched.StreamJob, n)
	now := 0.0
	for i := range jobs {
		now += 30 * r.Float64()
		maxPar := 1 + r.Intn(pool.Slots)
		work := float64(maxPar) * (20 + 580*r.Float64())
		j := sched.StreamJob{
			ID:             fmt.Sprintf("wf-%03d", i),
			Submit:         now,
			Work:           work,
			MaxParallelism: maxPar,
			MemoryMB:       (1 + r.Intn(4)) * 1024,
			VCores:         1,
			Predicted:      work / float64(maxPar),
		}
		if r.Intn(2) == 0 {
			j.Deadline = j.Submit + j.Predicted*(1.5+6*r.Float64())
		}
		jobs[i] = j
	}
	return jobs
}
