package tpch

import (
	"fmt"

	"boedag/internal/dag"
	"boedag/internal/units"
	"boedag/internal/workload"
)

// Rel is a relation a plan operator consumes: either a base table or the
// output of a previous job in the same query plan.
type Rel struct {
	// id is the producing job's ID ("" for base tables).
	id string
	// bytes is the relation's estimated size.
	bytes units.Bytes
}

// Bytes returns the relation's estimated size.
func (r Rel) Bytes() units.Bytes { return r.bytes }

// builder accumulates the MapReduce jobs a query plan compiles to,
// mirroring how Hive emits one job per shuffle boundary.
type builder struct {
	schema Schema
	w      *dag.Workflow
	n      int
}

func newBuilder(schema Schema, name string) *builder {
	return &builder{schema: schema, w: &dag.Workflow{Name: name}}
}

// table returns a Rel for a base table.
func (b *builder) table(t Table) Rel {
	return Rel{bytes: b.schema.Bytes(t)}
}

// deps collects the producing-job IDs of the given relations.
func deps(rels ...Rel) []string {
	var out []string
	for _, r := range rels {
		if r.id != "" {
			out = append(out, r.id)
		}
	}
	return out
}

// reducersFor sizes the reduce-task count the way Hive does: one reducer
// per 256 MB of shuffle input, clamped to [1, 99].
func reducersFor(shuffleBytes units.Bytes) int {
	n := int(shuffleBytes / (256 * units.MB))
	if n < 1 {
		n = 1
	}
	if n > 99 {
		n = 99
	}
	return n
}

// add registers a job and returns the Rel describing its output.
func (b *builder) add(op string, p workload.JobProfile, depRels []Rel) Rel {
	b.n++
	id := fmt.Sprintf("j%d-%s", b.n, op)
	p.Name = b.w.Name + "-" + id
	job := dag.Job{ID: id, Profile: p, Deps: deps(depRels...)}
	b.w.Jobs = append(b.w.Jobs, job)
	return Rel{id: id, bytes: p.OutputBytes()}
}

// hiveDefaults are the job-profile knobs shared by every compiled job:
// compression on and three replicas, matching the paper's Table I rows
// for the TPC-H hybrid workloads.
func hiveDefaults(p workload.JobProfile) workload.JobProfile {
	p.SplitBytes = 128 * units.MB
	p.Compression = workload.Compression{Enabled: true, Ratio: 0.4, CPUOverhead: 0.3}
	p.Replicas = 3
	p.SortBufferBytes = 100 * units.MB
	if p.SkewCV == 0 {
		p.SkewCV = 0.12
	}
	return p
}

// ScanAgg compiles a "scan → filter → group by → aggregate" block: the
// map filters with selectivity filterSel (and pre-aggregates through the
// combiner), the reduce emits groupSel of its input.
func (b *builder) scanAgg(src Rel, filterSel, groupSel, cpu float64) Rel {
	in := src.bytes
	p := hiveDefaults(workload.JobProfile{
		InputBytes:        in,
		ReduceTasks:       reducersFor(in.Scale(filterSel)),
		MapSelectivity:    filterSel,
		ReduceSelectivity: groupSel,
		MapCPUCost:        cpu,
		ReduceCPUCost:     1.5,
	})
	return b.add("agg", p, []Rel{src})
}

// Join compiles a common (repartition) join of two relations: maps tag
// and project both sides (projSel of the combined input reaches the
// shuffle), reducers emit outSel of the shuffled bytes.
func (b *builder) join(left, right Rel, projSel, outSel float64) Rel {
	in := left.bytes + right.bytes
	p := hiveDefaults(workload.JobProfile{
		InputBytes:        in,
		ReduceTasks:       reducersFor(in.Scale(projSel)),
		MapSelectivity:    projSel,
		ReduceSelectivity: outSel,
		MapCPUCost:        1.6,
		ReduceCPUCost:     2.0,
		SkewCV:            0.18, // join keys are rarely uniform
	})
	return b.add("join", p, []Rel{left, right})
}

// mapJoin compiles a broadcast (map-side) join: the small side is hashed
// in memory, so the job is map-only over the big side; outSel of the big
// side survives.
func (b *builder) mapJoin(big, small Rel, outSel float64) Rel {
	p := hiveDefaults(workload.JobProfile{
		InputBytes:     big.bytes + small.bytes,
		ReduceTasks:    0,
		MapSelectivity: outSel,
		MapCPUCost:     1.8,
	})
	return b.add("mapjoin", p, []Rel{big, small})
}

// groupBy compiles a standalone aggregation over an intermediate
// relation.
func (b *builder) groupBy(src Rel, groupSel float64) Rel {
	p := hiveDefaults(workload.JobProfile{
		InputBytes:        src.bytes,
		ReduceTasks:       reducersFor(src.bytes),
		MapSelectivity:    1.0,
		ReduceSelectivity: groupSel,
		MapCPUCost:        1.4,
		ReduceCPUCost:     1.6,
	})
	return b.add("group", p, []Rel{src})
}

// sortLimit compiles the final ORDER BY (+ LIMIT) job: a single-reducer
// total order over a small relation.
func (b *builder) sortLimit(src Rel, outSel float64) Rel {
	p := hiveDefaults(workload.JobProfile{
		InputBytes:        src.bytes,
		ReduceTasks:       1,
		MapSelectivity:    1.0,
		ReduceSelectivity: outSel,
		MapCPUCost:        1.2,
		ReduceCPUCost:     1.2,
	})
	return b.add("sort", p, []Rel{src})
}

// semiJoin compiles the EXISTS / IN subquery pattern: like a join but the
// output carries only the qualifying left-side rows.
func (b *builder) semiJoin(left, right Rel, outSel float64) Rel {
	in := left.bytes + right.bytes
	p := hiveDefaults(workload.JobProfile{
		InputBytes:        in,
		ReduceTasks:       reducersFor(in),
		MapSelectivity:    1.0,
		ReduceSelectivity: outSel,
		MapCPUCost:        1.5,
		ReduceCPUCost:     1.8,
		SkewCV:            0.18,
	})
	return b.add("semijoin", p, []Rel{left, right})
}

// build validates and returns the workflow.
func (b *builder) build() (*dag.Workflow, error) {
	if err := b.w.Validate(); err != nil {
		return nil, err
	}
	return b.w, nil
}
