// Package cachestore persists a response cache to disk so a restarted
// prediction daemon answers its first requests warm instead of
// cold-starting every PlanKey. The snapshot is a single self-validating
// file: a magic string, a format version, length-prefixed key/value
// records, and a trailing FNV-1a checksum over everything before it.
// Readers are strict — a truncated, corrupt, or unknown-version file is
// rejected with a typed error and never a panic (FuzzReadSnapshot holds
// that line) — because a bad warm cache is worse than a cold one.
//
// Writes are atomic: the snapshot is written to a temporary file in the
// target directory, synced, and renamed over the destination, so a crash
// mid-save leaves the previous snapshot intact.
package cachestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Entry is one cached key/value pair. Values are opaque bytes — for the
// prediction daemon they are marshalled response bodies keyed by the
// canonical evalpool PlanKey.
type Entry struct {
	Key string
	Val []byte
}

// Format constants. Version bumps whenever the byte layout changes;
// readers reject versions they do not understand rather than guessing.
const (
	magic   = "boedag-cache-snapshot\n"
	Version = 1
	// MaxKeyLen and MaxValLen bound one record; a snapshot claiming more
	// is corrupt by definition (responses are MiB-scale at most).
	MaxKeyLen = 1 << 16
	MaxValLen = 1 << 26
)

// Typed failures. Callers that warm-start switch on these to decide
// between "no snapshot yet" (fine) and "snapshot damaged" (start cold,
// count it).
var (
	// ErrBadMagic means the file is not a cache snapshot at all.
	ErrBadMagic = errors.New("cachestore: bad magic")
	// ErrUnknownVersion means the snapshot was written by a newer format.
	ErrUnknownVersion = errors.New("cachestore: unknown snapshot version")
	// ErrCorrupt means the file is recognizably a snapshot but damaged —
	// truncated records, oversized lengths, or a checksum mismatch.
	ErrCorrupt = errors.New("cachestore: corrupt snapshot")
)

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnv64a(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime
	}
	return h
}

// Encode renders entries in snapshot format. The output is a pure
// function of the entries (order included), so identical cache states
// snapshot to identical bytes.
func Encode(entries []Entry) []byte {
	size := len(magic) + 1 + binary.MaxVarintLen64 + 8
	for _, e := range entries {
		size += 2*binary.MaxVarintLen64 + len(e.Key) + len(e.Val)
	}
	out := make([]byte, 0, size)
	out = append(out, magic...)
	out = append(out, Version)
	out = binary.AppendUvarint(out, uint64(len(entries)))
	for _, e := range entries {
		out = binary.AppendUvarint(out, uint64(len(e.Key)))
		out = append(out, e.Key...)
		out = binary.AppendUvarint(out, uint64(len(e.Val)))
		out = append(out, e.Val...)
	}
	sum := fnv64a(fnvOffset, out)
	return binary.BigEndian.AppendUint64(out, sum)
}

// Decode parses snapshot bytes, validating structure, bounds, and the
// trailing checksum. It never panics on any input.
func Decode(data []byte) ([]Entry, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, ErrBadMagic
	}
	if len(data) < len(magic)+1+8 {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	if v := data[len(magic)]; v != Version {
		return nil, fmt.Errorf("%w: version %d", ErrUnknownVersion, v)
	}
	body, tail := data[:len(data)-8], data[len(data)-8:]
	if got, want := fnv64a(fnvOffset, body), binary.BigEndian.Uint64(tail); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	rest := body[len(magic)+1:]
	count, n := uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("%w: unreadable entry count", ErrCorrupt)
	}
	rest = rest[n:]
	if count > uint64(len(rest)) { // every record needs ≥ 1 byte
		return nil, fmt.Errorf("%w: entry count %d exceeds snapshot size", ErrCorrupt, count)
	}
	entries := make([]Entry, 0, count)
	for i := uint64(0); i < count; i++ {
		key, next, err := record(rest, MaxKeyLen, "key")
		if err != nil {
			return nil, err
		}
		val, next2, err := record(next, MaxValLen, "value")
		if err != nil {
			return nil, err
		}
		rest = next2
		entries = append(entries, Entry{Key: string(key), Val: append([]byte(nil), val...)})
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after last record", ErrCorrupt, len(rest))
	}
	return entries, nil
}

// uvarint is binary.Uvarint restricted to canonical (minimal-length)
// encodings, so every decodable snapshot re-encodes to identical bytes —
// the round-trip invariant FuzzReadSnapshot asserts.
func uvarint(data []byte) (uint64, int) {
	v, n := binary.Uvarint(data)
	if n <= 0 || n != len(binary.AppendUvarint(nil, v)) {
		return 0, 0
	}
	return v, n
}

// record reads one length-prefixed field off data.
func record(data []byte, max int, what string) (field, rest []byte, err error) {
	n, read := uvarint(data)
	if read <= 0 {
		return nil, nil, fmt.Errorf("%w: unreadable %s length", ErrCorrupt, what)
	}
	data = data[read:]
	if n > uint64(max) {
		return nil, nil, fmt.Errorf("%w: %s length %d exceeds bound %d", ErrCorrupt, what, n, max)
	}
	if n > uint64(len(data)) {
		return nil, nil, fmt.Errorf("%w: truncated %s", ErrCorrupt, what)
	}
	return data[:n], data[n:], nil
}

// Write atomically replaces the snapshot at path: encode, write to a
// temporary file in the same directory, sync, rename.
func Write(path string, entries []Entry) error {
	data := Encode(entries)
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("cachestore: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("cachestore: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("cachestore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cachestore: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("cachestore: %w", err)
	}
	return nil
}

// Read loads and validates the snapshot at path. A missing file is
// reported via os.IsNotExist / errors.Is(err, os.ErrNotExist) so callers
// can treat "no snapshot yet" as a clean cold start.
func Read(path string) ([]Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// ReadFrom decodes a snapshot from a stream (everything is read into
// memory; snapshots are bounded by construction).
func ReadFrom(r io.Reader) ([]Entry, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("cachestore: %w", err)
	}
	return Decode(data)
}
