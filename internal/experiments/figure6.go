package experiments

import (
	"fmt"
	"time"

	"boedag/internal/boe"
	"boedag/internal/dag"
	"boedag/internal/evalpool"
	"boedag/internal/metrics"
	"boedag/internal/workload"
)

// Fig6Stage identifies the three per-task phases the paper plots
// separately in Figure 6: the map task, the shuffle sub-stage of the
// reduce task, and the remaining reduce sub-stages.
type Fig6Stage int

const (
	// Fig6Map is the whole map task.
	Fig6Map Fig6Stage = iota
	// Fig6Shuffle is the copy/merge sub-stage of the reduce task.
	Fig6Shuffle
	// Fig6Reduce is the user-reduce + output sub-stage of the reduce task.
	Fig6Reduce
)

// String names the phase as in the figure captions.
func (s Fig6Stage) String() string {
	switch s {
	case Fig6Map:
		return "map"
	case Fig6Shuffle:
		return "shuffle"
	default:
		return "reduce"
	}
}

// Fig6Point is one x-position of a Figure 6 panel: the per-node degree of
// parallelism, the measured task time, and the two predictions.
type Fig6Point struct {
	PerNode  int
	Actual   time.Duration
	BOE      time.Duration
	Baseline time.Duration
}

// AccuracyBOE is the paper's accuracy of the BOE prediction at this point.
func (p Fig6Point) AccuracyBOE() float64 { return metrics.Accuracy(p.BOE, p.Actual) }

// AccuracyBaseline is the accuracy of the profile-replay baseline.
func (p Fig6Point) AccuracyBaseline() float64 { return metrics.Accuracy(p.Baseline, p.Actual) }

// Fig6Series is one panel of Figure 6 (a workload × a phase).
type Fig6Series struct {
	Workload string
	Stage    Fig6Stage
	Points   []Fig6Point
}

// AvgAccuracyBOE averages the BOE accuracy over the sweep.
func (s Fig6Series) AvgAccuracyBOE() float64 {
	var accs []float64
	for _, p := range s.Points {
		accs = append(accs, p.AccuracyBOE())
	}
	return metrics.Mean(accs)
}

// AvgAccuracyBaseline averages the baseline accuracy over the sweep.
func (s Fig6Series) AvgAccuracyBaseline() float64 {
	var accs []float64
	for _, p := range s.Points {
		accs = append(accs, p.AccuracyBaseline())
	}
	return metrics.Mean(accs)
}

// ImprovementAt reports baseline error / BOE error at the given per-node
// parallelism (the paper quotes the factor at 12).
func (s Fig6Series) ImprovementAt(perNode int) float64 {
	for _, p := range s.Points {
		if p.PerNode == perNode {
			return metrics.ImprovementFactor(
				metrics.Error(p.Baseline, p.Actual),
				metrics.Error(p.BOE, p.Actual))
		}
	}
	return 0
}

// Figure6Options tune the sweep.
type Figure6Options struct {
	// MaxPerNode is the top of the degree-of-parallelism sweep (paper: 12).
	MaxPerNode int
	// ProfilePerNode is the parallelism of the baseline's profiling run
	// (the baselines replay this measurement at every other parallelism).
	ProfilePerNode int
}

func (o Figure6Options) withDefaults() Figure6Options {
	if o.MaxPerNode == 0 {
		o.MaxPerNode = 12
	}
	if o.ProfilePerNode == 0 {
		o.ProfilePerNode = 2
	}
	return o
}

// Figure6 reproduces the paper's Figure 6: for Word Count and TeraSort
// run alone, sweep the per-node degree of parallelism and compare the
// measured task time of each phase against the BOE prediction and the
// Starfish/MRTuner-style best-case baseline (the measurement at the
// profiling parallelism, replayed unchanged).
//
// The (workload × parallelism) grid is evaluated through the parallel
// evaluation engine; the baseline measurement is memoized, so the
// profiling run — which is also one of the sweep points — simulates
// exactly once.
func Figure6(cfg Config, opt Figure6Options) ([]Fig6Series, error) {
	opt = opt.withDefaults()
	profiles := []workload.JobProfile{
		workload.WordCount(cfg.MicroInput),
		workload.TeraSort(cfg.MicroInput),
	}
	model := boe.New(cfg.Spec)
	cache := evalpool.NewResultCache().WithMetrics(cfg.Observe.Metrics)

	type point struct {
		actual, base, est map[Fig6Stage]time.Duration
	}
	type coord struct {
		p       workload.JobProfile
		perNode int
	}
	var coords []coord
	for _, p := range profiles {
		for perNode := 1; perNode <= opt.MaxPerNode; perNode++ {
			coords = append(coords, coord{p: p, perNode: perNode})
		}
	}
	jobs := make([]func() (point, error), len(coords))
	for i, c := range coords {
		c := c
		jobs[i] = func() (point, error) {
			actual, err := measurePhases(cfg, cache, c.p, c.perNode)
			if err != nil {
				return point{}, err
			}
			base, err := measurePhases(cfg, cache, c.p, opt.ProfilePerNode)
			if err != nil {
				return point{}, err
			}
			return point{
				actual: actual,
				base:   base,
				est:    predictPhases(cfg, model, c.p, c.perNode),
			}, nil
		}
	}
	points, err := runJobs(cfg, "figure6", jobs)
	if err != nil {
		return nil, err
	}

	var out []Fig6Series
	for wi, p := range profiles {
		series := map[Fig6Stage]*Fig6Series{}
		for _, st := range []Fig6Stage{Fig6Map, Fig6Shuffle, Fig6Reduce} {
			series[st] = &Fig6Series{Workload: p.Name, Stage: st}
		}
		for perNode := 1; perNode <= opt.MaxPerNode; perNode++ {
			pt := points[wi*opt.MaxPerNode+perNode-1]
			for _, st := range []Fig6Stage{Fig6Map, Fig6Shuffle, Fig6Reduce} {
				series[st].Points = append(series[st].Points, Fig6Point{
					PerNode:  perNode,
					Actual:   pt.actual[st],
					BOE:      pt.est[st],
					Baseline: pt.base[st],
				})
			}
		}
		for _, st := range []Fig6Stage{Fig6Map, Fig6Shuffle, Fig6Reduce} {
			out = append(out, *series[st])
		}
	}
	return out, nil
}

// measurePhases runs the job alone at the given per-node parallelism —
// through the memoizing cache, so repeated coordinates simulate once —
// and returns the median task time per phase.
func measurePhases(cfg Config, cache *evalpool.ResultCache, p workload.JobProfile, perNode int) (map[Fig6Stage]time.Duration, error) {
	opts := cfg.simOptions()
	opts.SlotLimit = perNode * cfg.Spec.Nodes
	res, err := cache.Run(cfg.Spec, opts, dag.Single(p))
	if err != nil {
		return nil, fmt.Errorf("experiments: figure6 %s Δ/node=%d: %w", p.Name, perNode, err)
	}
	out := make(map[Fig6Stage]time.Duration, 3)
	if s := res.StageOf(p.Name, workload.Map); s != nil {
		out[Fig6Map] = s.MedianTaskTime()
	}
	// Shuffle and reduce come from the reduce tasks' sub-stage splits.
	var shuffles, reduces []float64
	for _, t := range res.TasksOf(p.Name, workload.Reduce) {
		if len(t.SubStages) >= 1 {
			shuffles = append(shuffles, t.SubStages[0].Seconds())
		}
		var rest time.Duration
		for _, d := range t.SubStages[1:] {
			rest += d
		}
		reduces = append(reduces, rest.Seconds())
	}
	out[Fig6Shuffle] = secondsMedian(shuffles)
	out[Fig6Reduce] = secondsMedian(reduces)
	return out, nil
}

// predictPhases evaluates the BOE model for the same three phases.
func predictPhases(cfg Config, model *boe.Model, p workload.JobProfile, perNode int) map[Fig6Stage]time.Duration {
	total := perNode * cfg.Spec.Nodes
	mapPar := min(total, p.MapTasks())
	redPar := min(total, p.ReduceTasks)

	out := make(map[Fig6Stage]time.Duration, 3)
	mapEst := model.TaskTime(p, workload.Map, mapPar)
	out[Fig6Map] = mapEst.Duration + cfg.TaskStartOverhead

	if p.ReduceTasks > 0 {
		redEst := model.TaskTime(p, workload.Reduce, redPar)
		if len(redEst.SubStages) >= 1 {
			out[Fig6Shuffle] = redEst.SubStages[0].Duration
		}
		var rest time.Duration
		for _, ss := range redEst.SubStages[1:] {
			rest += ss.Duration
		}
		out[Fig6Reduce] = rest
	}
	return out
}

func secondsMedian(xs []float64) time.Duration {
	return time.Duration(metrics.Median(xs) * float64(time.Second))
}
