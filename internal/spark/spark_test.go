package spark

import (
	"strings"
	"testing"

	"boedag/internal/cluster"
	"boedag/internal/simulator"
	"boedag/internal/units"
	"boedag/internal/workload"
)

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		l    *Lineage
		want string
	}{
		{"no name", &Lineage{Stages: []Stage{{ID: "a", InputBytes: units.GB}}}, "name"},
		{"no stages", &Lineage{Name: "x"}, "no stages"},
		{"empty id", &Lineage{Name: "x", Stages: []Stage{{InputBytes: units.GB}}}, "empty ID"},
		{"dup id", &Lineage{Name: "x", Stages: []Stage{
			{ID: "a", InputBytes: units.GB}, {ID: "a", InputBytes: units.GB},
		}}, "duplicate"},
		{"orphan", &Lineage{Name: "x", Stages: []Stage{{ID: "a"}}}, "no input"},
		{"unknown parent", &Lineage{Name: "x", Stages: []Stage{
			{ID: "a", Parents: []StageID{"zzz"}},
		}}, "unknown"},
		{"self parent", &Lineage{Name: "x", Stages: []Stage{
			{ID: "a", InputBytes: units.GB, Parents: []StageID{"a"}},
		}}, "itself"},
		{"negative shape", &Lineage{Name: "x", Stages: []Stage{
			{ID: "a", InputBytes: units.GB, CPUCost: -1},
		}}, "negative"},
	}
	for _, c := range cases {
		err := c.l.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.want)
		}
	}
}

func TestTranslateWordCount(t *testing.T) {
	w, err := Translate(WordCountLineage(10 * units.GB))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 2 {
		t.Fatalf("got %d jobs, want 2", len(w.Jobs))
	}
	tokenize := w.Job("tokenize")
	if tokenize == nil {
		t.Fatal("tokenize job missing")
	}
	// The stage above a shuffle boundary carries a reduce side.
	if tokenize.Profile.ReduceTasks == 0 {
		t.Error("shuffle-producing stage has no exchange")
	}
	counts := w.Job("counts")
	if counts == nil || len(counts.Deps) != 1 || counts.Deps[0] != "tokenize" {
		t.Fatalf("counts job wrong: %+v", counts)
	}
	// Terminal stage is map-only (the action writes its result).
	if counts.Profile.ReduceTasks != 0 {
		t.Error("terminal stage has a reduce side")
	}
	// Sizes propagate: counts reads tokenize's output.
	if counts.Profile.InputBytes != tokenize.Profile.OutputBytes() {
		t.Errorf("counts input %v != tokenize output %v",
			counts.Profile.InputBytes, tokenize.Profile.OutputBytes())
	}
}

func TestTranslateRejectsForwardReferences(t *testing.T) {
	l := &Lineage{Name: "x", Stages: []Stage{
		{ID: "child", Parents: []StageID{"parent"}},
		{ID: "parent", InputBytes: units.GB},
	}}
	if _, err := Translate(l); err == nil {
		t.Fatal("forward reference accepted")
	}
}

func TestTranslatedLineageSimulates(t *testing.T) {
	w, err := Translate(PageRankLineage(5*units.GB, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 4 {
		t.Fatalf("PageRank lineage → %d jobs, want 4", len(w.Jobs))
	}
	res, err := simulator.New(cluster.PaperCluster(), simulator.Options{Seed: 1}).Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("no makespan")
	}
	// The rank stages must run one after another (iterative dependency).
	for i := 1; i <= 2; i++ {
		cur := res.StageOf(w.Jobs[i].ID, workload.Map)
		next := res.StageOf(w.Jobs[i+1].ID, workload.Map)
		if cur == nil || next == nil {
			t.Fatalf("missing stage records for jobs %d/%d", i, i+1)
		}
		if next.Start < cur.End {
			t.Errorf("iteration %d started before %d finished", i+1, i)
		}
	}
}

func TestPartitionsDeriveFromInput(t *testing.T) {
	l := &Lineage{Name: "x", Stages: []Stage{
		{ID: "scan", InputBytes: units.GB}, // 1 GB / 128 MB → 9 partitions
	}}
	w, err := Translate(l)
	if err != nil {
		t.Fatal(err)
	}
	got := w.Jobs[0].Profile.MapTasks()
	if got < 8 || got > 10 {
		t.Errorf("derived %d partitions for 1 GB, want ≈ 9", got)
	}
	// Explicit partition counts are honoured.
	l.Stages[0].Partitions = 4
	w, err = Translate(l)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Jobs[0].Profile.MapTasks(); got != 4 {
		t.Errorf("explicit partitions = %d, want 4", got)
	}
}

func TestReducePartitionsClamped(t *testing.T) {
	if got := reducePartitions(units.MB); got != 2 {
		t.Errorf("tiny exchange → %d partitions, want 2", got)
	}
	if got := reducePartitions(100 * units.GB); got != 200 {
		t.Errorf("huge exchange → %d partitions, want 200", got)
	}
}

func TestDefaultsFillIn(t *testing.T) {
	l := &Lineage{Name: "x", Stages: []Stage{
		{ID: "scan", InputBytes: units.GB}, // zero selectivity/CPU default to 1
	}}
	w, err := Translate(l)
	if err != nil {
		t.Fatal(err)
	}
	p := w.Jobs[0].Profile
	if p.MapSelectivity != 1 || p.MapCPUCost != 1 {
		t.Errorf("defaults not applied: %+v", p)
	}
}
