package serve

import (
	"context"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestWarmRestart is the disk-backed cache's end-to-end contract: a
// server that computed an estimate snapshots it, and a fresh server on
// the same CacheDir answers the same scenario as a cache hit without
// running the estimator once.
func TestWarmRestart(t *testing.T) {
	dir := t.TempDir()
	body := readRequest(t, "estimate_wc_ts")

	s1, ts1 := newTestServer(t, Config{CacheDir: dir})
	status, first, _ := post(t, ts1.URL+"/v1/estimate", body)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, first)
	}
	if err := s1.SaveCacheSnapshot(); err != nil {
		t.Fatalf("SaveCacheSnapshot: %v", err)
	}
	ts1.Close()

	s2, ts2 := newTestServer(t, Config{CacheDir: dir})
	if got := s2.Metrics().Counter("cache_restored_entries").Value(); got < 1 {
		t.Fatalf("restored %d entries, want >= 1", got)
	}
	status, second, _ := post(t, ts2.URL+"/v1/estimate", body)
	if status != http.StatusOK {
		t.Fatalf("restarted status = %d: %s", status, second)
	}
	if string(first) != string(second) {
		t.Errorf("warm answer diverged from the original bytes")
	}
	if got := s2.Metrics().Counter("estimates_computed").Value(); got != 0 {
		t.Errorf("restarted server ran the estimator %d times, want 0", got)
	}
	if hits, _ := s2.CacheStats(); hits != 1 {
		t.Errorf("first post-restart request counted %d hits, want 1", hits)
	}
}

// TestRestoreCorruptSnapshot: a damaged snapshot must not stop the boot —
// the server starts cold and counts the failure.
func TestRestoreCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapshotFile), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{CacheDir: dir})
	if got := s.Metrics().Counter("cache_restore_failed").Value(); got != 1 {
		t.Errorf("cache_restore_failed = %d, want 1", got)
	}
	status, _, _ := post(t, ts.URL+"/v1/estimate", readRequest(t, "estimate_wc_ts"))
	if status != http.StatusOK {
		t.Errorf("cold-after-corruption request failed: %d", status)
	}
}

// TestServeSnapshotsOnDrain: the graceful path (Serve's drain) writes the
// snapshot without any explicit SaveCacheSnapshot call.
func TestServeSnapshotsOnDrain(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{CacheDir: dir, DrainTimeout: time.Second})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()

	url := "http://" + ln.Addr().String()
	status, _, _, err := tryPost(url+"/v1/estimate", readRequest(t, "estimate_wc_ts"))
	if err != nil || status != http.StatusOK {
		t.Fatalf("estimate: %d %v", status, err)
	}
	cancel()
	if err := <-served; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFile)); err != nil {
		t.Errorf("drain left no snapshot: %v", err)
	}
}
