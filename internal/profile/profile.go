// Package profile captures and persists job execution profiles: per-stage
// task-time distributions measured from a (simulated) run. Profiles are
// the historical knowledge P of the paper's problem statement — the
// state-based estimator of §V-C consumes them "to eliminate the error of
// task-level models", and the Starfish/MRTuner-style baselines replay
// them verbatim.
package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"boedag/internal/cluster"
	"boedag/internal/simulator"
	"boedag/internal/workload"
)

// StageProfile is the measured task-time distribution of one job stage.
type StageProfile struct {
	// Job and Stage identify the profiled stage.
	Job   string         `json:"job"`
	Stage workload.Stage `json:"stage"`
	// Parallelism is the degree of parallelism of the profiling run.
	Parallelism int `json:"parallelism"`
	// TaskTimes are the measured per-task durations.
	TaskTimes []time.Duration `json:"task_times"`
	// Bottleneck is the dominant resource observed during profiling.
	Bottleneck cluster.Resource `json:"bottleneck"`
}

// Median returns the median task time.
func (p StageProfile) Median() time.Duration { return quantile(p.TaskTimes, 0.5) }

// Mean returns the mean task time.
func (p StageProfile) Mean() time.Duration {
	if len(p.TaskTimes) == 0 {
		return 0
	}
	var sum time.Duration
	for _, t := range p.TaskTimes {
		sum += t
	}
	return sum / time.Duration(len(p.TaskTimes))
}

// StdDev returns the sample standard deviation of the task times.
func (p StageProfile) StdDev() time.Duration {
	n := len(p.TaskTimes)
	if n < 2 {
		return 0
	}
	mean := p.Mean().Seconds()
	var ss float64
	for _, t := range p.TaskTimes {
		d := t.Seconds() - mean
		ss += d * d
	}
	return time.Duration(math.Sqrt(ss/float64(n-1)) * float64(time.Second))
}

// Quantile returns the q-quantile task time, q in [0,1].
func (p StageProfile) Quantile(q float64) time.Duration { return quantile(p.TaskTimes, q) }

func quantile(ts []time.Duration, q float64) time.Duration {
	n := len(ts)
	if n == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo] + time.Duration(frac*float64(sorted[lo+1]-sorted[lo]))
}

// Set holds the profiles of every stage of every job in a workflow,
// keyed by job ID.
type Set struct {
	// Workflow names the run the profiles came from.
	Workflow string `json:"workflow"`
	// Stages maps "job" → stage profiles.
	Stages map[string][]StageProfile `json:"stages"`
}

// Capture extracts a profile set from a simulation result.
func Capture(res *simulator.Result) *Set {
	set := &Set{Workflow: res.Workflow, Stages: make(map[string][]StageProfile)}
	for _, s := range res.Stages {
		set.Stages[s.Job] = append(set.Stages[s.Job], StageProfile{
			Job:         s.Job,
			Stage:       s.Stage,
			Parallelism: s.MaxParallelism,
			TaskTimes:   append([]time.Duration(nil), s.TaskTimes...),
			Bottleneck:  s.Bottleneck,
		})
	}
	return set
}

// Stage returns the profile of (job, stage) and whether it exists.
func (s *Set) Stage(job string, st workload.Stage) (StageProfile, bool) {
	for _, p := range s.Stages[job] {
		if p.Stage == st {
			return p, true
		}
	}
	return StageProfile{}, false
}

// Merge folds other's profiles into s (overwriting same job+stage).
func (s *Set) Merge(other *Set) {
	if s.Stages == nil {
		s.Stages = make(map[string][]StageProfile)
	}
	for job, ps := range other.Stages {
		for _, p := range ps {
			replaced := false
			for i, old := range s.Stages[job] {
				if old.Stage == p.Stage {
					s.Stages[job][i] = p
					replaced = true
					break
				}
			}
			if !replaced {
				s.Stages[job] = append(s.Stages[job], p)
			}
		}
	}
}

// Save writes the set as indented JSON.
func (s *Set) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("profile: save %q: %w", s.Workflow, err)
	}
	return nil
}

// Load reads a set saved by Save.
func Load(r io.Reader) (*Set, error) {
	var s Set
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("profile: load: %w", err)
	}
	return &s, nil
}
