package sched_test

// Metamorphic policy relations — equivalence goldens alongside the
// byte-identity suites: inputs on which every discipline must agree, and
// degenerations that must reproduce a simpler policy exactly.

import (
	"reflect"
	"testing"

	"boedag/internal/sched"
	"boedag/internal/sched/schedtest"
)

// TestMetamorphicSingleJob: with one job there is nothing to arbitrate —
// every policy grants exactly the same containers.
func TestMetamorphicSingleJob(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		r := schedtest.New(seed)
		s := r.Scenario()
		s.Requests = s.Requests[:1]
		s.Requests[0].Gang = 0
		held := sched.Allocation{}
		for id, h := range s.Held {
			if id == s.Requests[0].JobID {
				held[id] = h
			}
		}
		ref := sched.Grant(sched.PolicyDRF, s.Pool, s.Requests, held)
		for _, p := range sched.Policies() {
			got := sched.Grant(p, s.Pool, s.Requests, held)
			if !allocEqual(ref, got) {
				t.Fatalf("seed %d: %s diverged on a single job: %s vs %s",
					seed, p, schedtest.FormatAllocation(got), schedtest.FormatAllocation(ref))
			}
		}
		// The hierarchical allocator agrees too (single job, no contention
		// — whatever its queue, it absorbs what fits).
		if s.Requests[0].Queue == "" || s.Hierarchy == nil {
			res := sched.AllocateHierarchy(s.Pool, nil, s.Requests, held)
			if !allocEqual(ref, res.Grants) {
				t.Fatalf("seed %d: hierarchy diverged on a single flat job", seed)
			}
		}
	}
}

// TestMetamorphicInfiniteCapacity: with capacity beyond total demand,
// arbitration is irrelevant — every policy satisfies everyone.
func TestMetamorphicInfiniteCapacity(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		r := schedtest.New(seed)
		s := r.Scenario()
		for i := range s.Requests {
			s.Requests[i].Gang = 0
		}
		mem, cpu, slots := 0, 0, 0
		for _, q := range s.Requests {
			n := q.Pending + s.Held[q.JobID]
			mem += n * q.MemoryMB
			cpu += n * q.VCores
			slots += n
		}
		pool := sched.Pool{MemoryMB: mem + 1, VCores: cpu + 1, Slots: slots + 1}
		ref := sched.Grant(sched.PolicyDRF, pool, s.Requests, s.Held)
		for _, p := range sched.Policies() {
			got := sched.Grant(p, pool, s.Requests, s.Held)
			if !allocEqual(ref, got) {
				t.Fatalf("seed %d: %s diverged under infinite capacity", seed, p)
			}
		}
		res := sched.AllocateHierarchy(pool, s.Hierarchy, stripQueues(s.Requests), s.Held)
		if !allocEqual(ref, res.Grants) {
			t.Fatalf("seed %d: hierarchy diverged under infinite capacity (root queues)", seed)
		}
	}
}

// TestMetamorphicSPJFDegradesToFIFO: with equal (or absent) predictions
// SPJF is FIFO, grant for grant.
func TestMetamorphicSPJFDegradesToFIFO(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		r := schedtest.New(seed)
		s := r.Scenario()
		for _, equal := range []float64{0, 42.5} {
			reqs := append([]sched.Request(nil), s.Requests...)
			for i := range reqs {
				reqs[i].Predicted = equal
			}
			fifo := sched.Grant(sched.PolicyFIFO, s.Pool, reqs, s.Held)
			spjf := sched.Grant(sched.PolicySPJF, s.Pool, reqs, s.Held)
			if !allocEqual(fifo, spjf) {
				t.Fatalf("seed %d: SPJF(pred=%g) != FIFO:\n  %s\n  %s", seed, equal,
					schedtest.FormatAllocation(spjf), schedtest.FormatAllocation(fifo))
			}
		}
	}
}

// TestMetamorphicHierarchyDegradesToDRF: a nil hierarchy, and a
// hierarchy whose queues declare no quotas, limits, or distinct weights,
// must reproduce flat DRF exactly (no gangs in play).
func TestMetamorphicHierarchyDegradesToDRF(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		r := schedtest.New(seed)
		s := r.Scenario()
		reqs := make([]sched.Request, len(s.Requests))
		for i, q := range s.Requests {
			q.Gang = 0
			reqs[i] = q
		}
		ref := sched.DRF(s.Pool, reqs, s.Held)
		flat := sched.AllocateHierarchy(s.Pool, nil, reqs, s.Held)
		if flat.Evict != nil || !allocEqual(ref, flat.Grants) {
			t.Fatalf("seed %d: nil hierarchy != DRF", seed)
		}
		// Same queues, neutered: no quota, no limit, weight 1 everywhere.
		if len(s.Specs) == 0 {
			continue
		}
		specs := make([]sched.QueueSpec, len(s.Specs))
		for i, sp := range s.Specs {
			specs[i] = sched.QueueSpec{Name: sp.Name, Parent: sp.Parent, Weight: 1}
		}
		h, err := sched.NewHierarchy(specs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		neutered := sched.AllocateHierarchy(s.Pool, h, reqs, s.Held)
		if neutered.Evict != nil || !allocEqual(ref, neutered.Grants) {
			t.Fatalf("seed %d: neutered hierarchy != DRF:\n  %s\n  %s", seed,
				schedtest.FormatAllocation(neutered.Grants), schedtest.FormatAllocation(ref))
		}
	}
}

// TestMetamorphicStreamPoliciesAgree: stream-level relations — all
// policies agree on a single-job stream and on an uncontended cluster;
// deadline admission with no deadlines declared is plain SPJF; equal
// predictions collapse predictive ordering to FIFO.
func TestMetamorphicStreamPoliciesAgree(t *testing.T) {
	allOpts := []sched.StreamOptions{
		{Policy: sched.PolicyFIFO},
		{Policy: sched.PolicyDRF},
		{Policy: sched.PolicyFair},
		{Policy: sched.PolicySPJF},
		{Policy: sched.PolicySPJF, DeadlineAdmission: true},
	}
	for seed := int64(0); seed < 40; seed++ {
		r := schedtest.New(seed)
		pool := r.Pool()

		// Single job: identical fate under every policy.
		solo := r.Stream(1, pool)
		solo[0].Deadline = 0
		ref := sched.RunStream(pool, solo, allOpts[0])
		for _, opt := range allOpts[1:] {
			if got := sched.RunStream(pool, solo, opt); !reflect.DeepEqual(ref, got) {
				t.Fatalf("seed %d: %v diverged on single-job stream", seed, opt)
			}
		}

		// Uncontended: every job fits at max parallelism simultaneously →
		// every job runs standalone (slowdown 1) under every policy.
		jobs := r.Stream(6, pool)
		slots := 0
		for i := range jobs {
			jobs[i].MemoryMB = 1024
			jobs[i].VCores = 1
			jobs[i].Deadline = 0
			slots += jobs[i].MaxParallelism
		}
		big := sched.Pool{MemoryMB: slots * 2048, VCores: slots * 2, Slots: slots * 2}
		for _, opt := range allOpts {
			got := sched.RunStream(big, jobs, opt)
			for _, j := range got.Jobs {
				if j.Slowdown > 1.0001 {
					t.Fatalf("seed %d: %v slowdown %g on uncontended cluster", seed, opt, j.Slowdown)
				}
			}
			if got.Preemptions != 0 {
				t.Fatalf("seed %d: %v preempted on uncontended cluster", seed, opt)
			}
		}

		// No deadlines → admission control is inert.
		streak := r.Stream(10, pool)
		for i := range streak {
			streak[i].Deadline = 0
		}
		plain := sched.RunStream(pool, streak, sched.StreamOptions{Policy: sched.PolicySPJF})
		gated := sched.RunStream(pool, streak, sched.StreamOptions{Policy: sched.PolicySPJF, DeadlineAdmission: true})
		if !reflect.DeepEqual(plain, gated) {
			t.Fatalf("seed %d: deadline admission changed a deadline-free stream", seed)
		}

		// Equal predictions → SPJF stream == FIFO stream.
		flat := r.Stream(10, pool)
		for i := range flat {
			flat[i].Predicted = 100
			flat[i].Deadline = 0
		}
		f := sched.RunStream(pool, flat, sched.StreamOptions{Policy: sched.PolicyFIFO})
		sp := sched.RunStream(pool, flat, sched.StreamOptions{Policy: sched.PolicySPJF})
		if !reflect.DeepEqual(f, sp) {
			t.Fatalf("seed %d: SPJF stream != FIFO stream under equal predictions", seed)
		}
	}
}

func stripQueues(reqs []sched.Request) []sched.Request {
	out := make([]sched.Request, len(reqs))
	for i, r := range reqs {
		r.Queue = ""
		r.Gang = 0
		out[i] = r
	}
	return out
}
