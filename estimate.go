package boedag

import (
	"io"

	"boedag/internal/baseline"
	"boedag/internal/metrics"
	"boedag/internal/profile"
	"boedag/internal/simulator"
	"boedag/internal/statemodel"
	"boedag/internal/trace"
)

// Workflow-level estimation (the paper's §IV state-based approach).
type (
	// Estimator predicts DAG execution plans with Algorithm 1.
	Estimator = statemodel.Estimator
	// EstimatorOptions tune the estimator.
	EstimatorOptions = statemodel.Options
	// SkewMode selects mean / median / normal-distribution skew handling.
	SkewMode = statemodel.SkewMode
	// TaskTimer supplies task-time distributions to the estimator.
	TaskTimer = statemodel.TaskTimer
	// TaskTimeDist summarizes a predicted task-time distribution.
	TaskTimeDist = statemodel.TaskTimeDist
	// BOETimer drives the estimator with the BOE model.
	BOETimer = statemodel.BOETimer
	// ProfileTimer drives the estimator with measured profiles.
	ProfileTimer = statemodel.ProfileTimer
	// Plan is an estimated execution plan.
	Plan = statemodel.Plan
	// StageEstimate is one predicted job stage.
	StageEstimate = statemodel.StageEstimate
	// StateEstimate is one predicted workflow state.
	StateEstimate = statemodel.StateEstimate
)

// Skew modes (the paper's Table III rows).
const (
	// MeanMode is Alg1-Mean.
	MeanMode = statemodel.MeanMode
	// MedianMode is Alg1-Mid.
	MedianMode = statemodel.MedianMode
	// NormalMode is Alg2-Normal (expected-maximum straggler correction).
	NormalMode = statemodel.NormalMode
)

// NewEstimator returns a state-based estimator over the given task timer.
func NewEstimator(spec ClusterSpec, timer TaskTimer, opt EstimatorOptions) *Estimator {
	return statemodel.New(spec, timer, opt)
}

// SkewModes lists the three skew modes in table order.
func SkewModes() []SkewMode { return statemodel.Modes() }

// Profiles (historical job knowledge).
type (
	// ProfileSet holds measured per-stage task-time distributions.
	ProfileSet = profile.Set
	// StageProfile is one stage's measured distribution.
	StageProfile = profile.StageProfile
)

// CaptureProfiles extracts a profile set from a simulation result.
func CaptureProfiles(res *simulator.Result) *ProfileSet { return profile.Capture(res) }

// LoadProfiles reads a profile set saved with ProfileSet.Save.
func LoadProfiles(r io.Reader) (*ProfileSet, error) { return profile.Load(r) }

// Baselines (§V-B comparison models).
type (
	// ProfileReplay is the Starfish/MRTuner-style best-case baseline.
	ProfileReplay = baseline.ProfileReplay
	// Ernest is the scaling-law regression baseline.
	Ernest = baseline.Ernest
	// ErnestTrainingPoint is one (parallelism, task time) observation.
	ErnestTrainingPoint = baseline.TrainingPoint
)

// NewProfileReplay returns the profile-replay baseline over profiles.
func NewProfileReplay(p *ProfileSet) *ProfileReplay { return baseline.NewProfileReplay(p) }

// Accuracy is the paper's estimation accuracy: 1 − |est−actual|/actual,
// clamped to [0, 1].
var Accuracy = metrics.Accuracy

// RenderGantt prints a simulation result as a text Gantt chart with
// workflow states marked (the paper's Figure 1 layout).
var RenderGantt = trace.Gantt

// RenderPlan prints an estimated plan in the same layout for side-by-side
// comparison with RenderGantt output.
var RenderPlan = trace.Plan

// Exporters for downstream analysis.
var (
	// ExportTasksCSV writes per-task records of a run as CSV.
	ExportTasksCSV = trace.ExportTasksCSV
	// ExportStagesCSV writes per-stage records of a run as CSV.
	ExportStagesCSV = trace.ExportStagesCSV
	// ExportResultJSON writes a run summary as JSON.
	ExportResultJSON = trace.ExportResultJSON
	// ExportPlanJSON writes an estimated plan as JSON.
	ExportPlanJSON = trace.ExportPlanJSON
)
