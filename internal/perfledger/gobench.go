package perfledger

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseGoBench parses `go test -bench` output into Benchmark rows — the
// "-ledger" bridge that lets the existing bench_test.go micro-benchmarks
// feed the same BENCH_*.json trajectory as the service load harness.
//
// Lines that are not benchmark results (goos/pkg headers, PASS/ok
// trailers) are skipped. A benchmark name's -GOMAXPROCS suffix is
// stripped so the same benchmark compares across machines; repeated
// runs of one benchmark (-count > 1) are averaged, weighted by each
// run's iteration count. Standard units map to the typed fields
// (ns/op, B/op, allocs/op); custom b.ReportMetric units land in
// Metrics verbatim.
func ParseGoBench(r io.Reader) ([]Benchmark, error) {
	type acc struct {
		iters int64
		sums  map[string]float64 // unit → Σ value·iters
	}
	accs := make(map[string]*acc)
	var order []string

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil || iters < 1 {
			return nil, fmt.Errorf("perfledger: gobench line %d: bad iteration count %q", line, fields[1])
		}
		if len(fields[2:])%2 != 0 {
			return nil, fmt.Errorf("perfledger: gobench line %d: odd value/unit pairing", line)
		}
		a := accs[name]
		if a == nil {
			a = &acc{sums: make(map[string]float64)}
			accs[name] = a
			order = append(order, name)
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("perfledger: gobench line %d: bad value %q", line, fields[i])
			}
			a.sums[fields[i+1]] += v * float64(iters)
		}
		a.iters += iters
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("perfledger: gobench: %w", err)
	}

	out := make([]Benchmark, 0, len(order))
	for _, name := range order {
		a := accs[name]
		b := Benchmark{Name: name, Iterations: a.iters}
		for unit, sum := range a.sums {
			mean := sum / float64(a.iters)
			switch unit {
			case "ns/op":
				b.NsPerOp = mean
			case "B/op":
				b.BytesPerOp = mean
			case "allocs/op":
				b.AllocsPerOp = mean
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[unit] = mean
			}
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("perfledger: gobench: no benchmark lines found")
	}
	return out, nil
}
