// Package cliobs wires the observability layer into command-line tools:
// one flag set covering event tracing, live streaming, metrics export,
// OTLP export, and Go profiling, shared by dagsim, boepredict, boetune,
// calibrate and benchtables.
package cliobs

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -pprof server
	"os"
	"runtime"
	"runtime/pprof"

	"boedag/internal/explain"
	"boedag/internal/obs"
)

// Flags carries the observability command-line options.
type Flags struct {
	TraceOut     string // Chrome trace_event JSON output path
	MetricsOut   string // metrics snapshot JSON output path
	Summary      bool   // print a plain-text event digest to stdout
	OTLPOut      string // OTLP/JSON export output path (traces + metrics)
	OTLPEndpoint string // OTLP/HTTP collector base URL to POST to
	LiveProgress bool   // stream events to an online progress estimator
	Explain      bool   // print the estimate explanation after the run
	ExplainOut   string // write the explanation JSON to this file
	PprofAddr    string // serve net/http/pprof on this address
	CPUProfile   string // write a CPU profile here
	MemProfile   string // write a heap profile here

	recorder    *obs.Recorder
	registry    *obs.Registry
	stream      *obs.Stream
	cpuFile     *os.File
	annotations *obs.TraceAnnotations
}

// Register installs the flags on fs (the default command-line set when
// nil).
func (f *Flags) Register(fs *flag.FlagSet) {
	if fs == nil {
		fs = flag.CommandLine
	}
	fs.StringVar(&f.TraceOut, "trace-out", "", "write a Chrome trace_event JSON file (chrome://tracing)")
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "write a run-metrics JSON snapshot")
	fs.BoolVar(&f.Summary, "obs-summary", false, "print an event summary after the run")
	fs.StringVar(&f.OTLPOut, "otlp-out", "", "write an OTLP/JSON export (spans + metrics) to this file")
	fs.StringVar(&f.OTLPEndpoint, "otlp-endpoint", "", "POST OTLP/JSON to this collector base URL (/v1/traces, /v1/metrics)")
	fs.StringVar(&f.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file")
}

// RegisterLive additionally installs -live-progress, for tools that can
// drive an online progress estimator from the event stream.
func (f *Flags) RegisterLive(fs *flag.FlagSet) {
	if fs == nil {
		fs = flag.CommandLine
	}
	f.Register(fs)
	fs.BoolVar(&f.LiveProgress, "live-progress", false, "print live remaining-time estimates during the run")
}

// RegisterExplain additionally installs -explain and -explain-out, for
// tools whose estimate can be explained (critical path, per-resource
// bottleneck attribution, θ-sensitivity).
func (f *Flags) RegisterExplain(fs *flag.FlagSet) {
	if fs == nil {
		fs = flag.CommandLine
	}
	fs.BoolVar(&f.Explain, "explain", false, "print the explained estimate: critical path, bottleneck attribution, θ-sensitivity")
	fs.StringVar(&f.ExplainOut, "explain-out", "", "write the explanation as JSON to this file")
}

// ExplainRequested reports whether any explanation output was asked for,
// so tools can skip building the explanation entirely otherwise.
func (f *Flags) ExplainRequested() bool { return f.Explain || f.ExplainOut != "" }

// Annotate attaches derived trace annotations; Finish merges them into
// the Chrome-trace and OTLP exports (recorded args always win on a key
// collision). WriteExplanation calls this itself.
func (f *Flags) Annotate(a *obs.TraceAnnotations) { f.annotations = a }

// WriteExplanation renders the explanation as requested — -explain text
// to stdout, -explain-out JSON to a file — and registers its trace
// annotations so Finish's exports carry the critical-path markers. Call
// it before Finish.
func (f *Flags) WriteExplanation(e *explain.Explanation) error {
	if e == nil {
		return nil
	}
	f.Annotate(e.TraceAnnotations())
	if f.Explain {
		fmt.Println()
		if err := e.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	if f.ExplainOut != "" {
		if err := writeFile(f.ExplainOut, e.WriteJSON); err != nil {
			return err
		}
	}
	return nil
}

// Options starts any requested profiling and returns the obs.Options to
// hand to the simulator or estimator. The tracer, registry, and stream
// are only allocated when an output that needs them was requested, so
// plain runs keep the zero-cost disabled path. When several sinks are
// active the tracer is a tee over all of them.
func (f *Flags) Options() (obs.Options, error) {
	var o obs.Options
	if f.TraceOut != "" || f.Summary || f.OTLPOut != "" || f.OTLPEndpoint != "" {
		f.recorder = obs.NewRecorder()
	}
	if f.LiveProgress {
		f.stream = obs.NewStream()
	}
	// Append conditionally: a nil *Recorder inside a Tracer value is not a
	// nil interface, so Tee could not filter it out itself.
	var sinks []obs.Tracer
	if f.recorder != nil {
		sinks = append(sinks, f.recorder)
	}
	if f.stream != nil {
		sinks = append(sinks, f.stream)
	}
	if len(sinks) > 0 {
		o.Tracer = obs.Tee(sinks...)
	}
	if f.MetricsOut != "" || f.OTLPOut != "" || f.OTLPEndpoint != "" {
		f.registry = obs.NewRegistry()
		o.Metrics = f.registry
	}
	if f.PprofAddr != "" {
		ln := f.PprofAddr
		go func() {
			if err := http.ListenAndServe(ln, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", ln)
	}
	if f.CPUProfile != "" {
		cf, err := os.Create(f.CPUProfile)
		if err != nil {
			return o, err
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			cf.Close()
			return o, err
		}
		f.cpuFile = cf
	}
	return o, nil
}

// Registry returns the metrics registry allocated by Options, or nil when
// no metrics-consuming output was requested. Long-running servers share
// it so their runtime counters appear in -metrics-out / OTLP artifacts.
func (f *Flags) Registry() *obs.Registry { return f.registry }

// Stream returns the live event stream, or nil when -live-progress was
// not requested (or Options has not run yet). Subscribe before the run
// starts: producers snapshot Enabled at startup.
func (f *Flags) Stream() *obs.Stream { return f.stream }

// CloseStream closes the live stream so its consumers drain and
// terminate. Idempotent and safe when no stream exists; call it after
// the observed run, before printing any post-run report, so live output
// does not interleave.
func (f *Flags) CloseStream() {
	if f.stream != nil {
		f.stream.Close()
	}
}

// Finish stops profiling and writes every requested artifact, printing
// the path of each file it creates. It closes the live stream first so
// streaming consumers are done before post-run artifacts land.
func (f *Flags) Finish() error {
	f.CloseStream()
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := f.cpuFile.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", f.CPUProfile)
	}
	if f.MemProfile != "" {
		mf, err := os.Create(f.MemProfile)
		if err != nil {
			return err
		}
		runtime.GC()
		err = pprof.WriteHeapProfile(mf)
		if cerr := mf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", f.MemProfile)
	}
	if f.recorder != nil && f.TraceOut != "" {
		if err := writeFile(f.TraceOut, func(w io.Writer) error {
			return obs.WriteChromeTraceAnnotated(w, f.recorder.Events(), f.annotations)
		}); err != nil {
			return err
		}
	}
	if f.registry != nil && f.MetricsOut != "" {
		if err := writeFile(f.MetricsOut, f.registry.WriteJSON); err != nil {
			return err
		}
	}
	if f.OTLPOut != "" {
		if err := writeFile(f.OTLPOut, func(w io.Writer) error {
			return obs.WriteOTLP(w, f.recorder.Events(), f.registry, obs.OTLPOptions{Annotations: f.annotations})
		}); err != nil {
			return err
		}
	}
	if f.OTLPEndpoint != "" {
		if err := obs.PostOTLP(f.OTLPEndpoint, f.recorder.Events(), f.registry, obs.OTLPOptions{Annotations: f.annotations}); err != nil {
			return err
		}
		fmt.Printf("posted OTLP to %s\n", f.OTLPEndpoint)
	}
	if f.recorder != nil && f.Summary {
		fmt.Println()
		obs.WriteSummary(os.Stdout, f.recorder.Events())
	}
	return nil
}

func writeFile(path string, write func(io.Writer) error) error {
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(w); err != nil {
		w.Close()
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
