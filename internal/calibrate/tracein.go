// Trace ingestion: offline calibration consumes the Chrome trace_event
// JSON that obs.WriteChromeTrace emits instead of a rerunnable cluster.
// A recorded probe session (dagsim -trace-out or calibrate -trace-out)
// is parsed back into per-task sub-stage durations and D_X byte counts,
// and a TraceRunner serves the reconstructed measurements to the same
// model-inversion arithmetic the live path uses — the Starfish-style
// job-profile workflow: profile once, calibrate offline, forever after.
//
// The parser is strict about the fields it consumes (the load-bearing
// schema contract, documented in DESIGN.md) and returns errors — never
// panics — on malformed, truncated, or arg-less input; FuzzParseChromeTrace
// holds that line.
package calibrate

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"boedag/internal/cluster"
	"boedag/internal/simulator"
	"boedag/internal/units"
	"boedag/internal/workload"
)

// SubSample is one recorded sub-stage execution: its duration and the
// bytes it moved per resource class — a (t, D_X) pair ready for θ_X
// inversion.
type SubSample struct {
	// Name is the sub-stage label ("map", "shuffle", "reduce", …).
	Name string
	// Start and Dur are model-time seconds (Dur excludes the container
	// launch delay; the simulator resets the sub-stage clock after it).
	Start, Dur float64
	// Bytes holds D_X per resource, indexed by cluster.Resource. Zero for
	// resources the sub-stage did not touch, and all-zero when the trace
	// predates byte-count recording.
	Bytes [cluster.NumResources]float64
	// Bottleneck is the recorded resolved bottleneck name ("" if absent).
	Bottleneck string
}

// traceTask accumulates one task's spans while parsing.
type traceTask struct {
	start, dur float64
	seen       bool // a task span was recorded (not just sub-stages)
	subs       []SubSample
}

// traceStage is the per-(job, stage) slice of a session.
type traceStage struct {
	tasks map[int]*traceTask
}

// traceJob groups a recorded job's stages.
type traceJob struct {
	stages map[workload.Stage]*traceStage
}

// Session is a parsed trace: everything offline calibration needs,
// reconstructed from the recorded spans. Build one with ParseChromeTrace
// and combine several with Merge.
type Session struct {
	// Nodes and Slots describe the recorded cluster: node count and the
	// largest effective slot capacity seen across the session's runs
	// (single-task probes record their own 1-slot limit; the saturating
	// probes record the full pool).
	Nodes, Slots int
	// Skewed reports whether any recorded run had task-size skew active;
	// calibration then leans on its medians and says so in the report.
	Skewed bool
	// Workflows lists the recorded run names, sorted.
	Workflows []string
	jobs      map[string]*traceJob
}

// Jobs returns the recorded job names, sorted.
func (s *Session) Jobs() []string {
	names := make([]string, 0, len(s.jobs))
	for j := range s.jobs {
		names = append(names, j)
	}
	sort.Strings(names)
	return names
}

// chromeInEvent mirrors the subset of the trace_event JSON the parser
// consumes. Args stays raw JSON so malformed payloads fail with a typed
// error at the field that broke, not a panic.
type chromeInEvent struct {
	Name  string          `json:"name"`
	Cat   string          `json:"cat"`
	Phase string          `json:"ph"`
	TS    float64         `json:"ts"`
	Dur   float64         `json:"dur"`
	Args  json.RawMessage `json:"args"`
}

type chromeInFile struct {
	TraceEvents []chromeInEvent `json:"traceEvents"`
}

// ParseChromeTrace reads Chrome trace_event JSON produced by
// obs.WriteChromeTrace and reconstructs the recorded session. It
// consumes the "meta"/"task"/"substage" categories and ignores the rest;
// missing run metadata, spans without their identifying args, or
// non-finite timings are errors.
func ParseChromeTrace(r io.Reader) (*Session, error) {
	dec := json.NewDecoder(io.LimitReader(r, maxTraceBytes))
	var file chromeInFile
	if err := dec.Decode(&file); err != nil {
		return nil, fmt.Errorf("calibrate: parse trace: %w", err)
	}
	if len(file.TraceEvents) == 0 {
		return nil, fmt.Errorf("calibrate: parse trace: no traceEvents")
	}
	s := &Session{jobs: make(map[string]*traceJob)}
	for i, ev := range file.TraceEvents {
		var err error
		switch {
		case ev.Cat == "meta" && ev.Name == "run":
			err = s.addRunInfo(ev)
		case ev.Cat == "task" && ev.Phase == "X":
			err = s.addTaskSpan(ev)
		case ev.Cat == "substage" && ev.Phase == "X":
			err = s.addSubStageSpan(ev)
		}
		if err != nil {
			return nil, fmt.Errorf("calibrate: parse trace: event %d (%s/%s): %w",
				i, ev.Cat, ev.Name, err)
		}
	}
	if s.Nodes <= 0 || s.Slots <= 0 {
		return nil, fmt.Errorf("calibrate: parse trace: no run metadata " +
			"(nodes/slots); record the trace with this version's -trace-out")
	}
	sort.Strings(s.Workflows)
	return s, nil
}

// maxTraceBytes bounds one trace file (256 MB decoded JSON) so a
// malicious or corrupt input cannot exhaust memory.
const maxTraceBytes = 256 << 20

// runArgs / taskArgs / subArgs are the load-bearing halves of the three
// span kinds. Absent optional fields decode to their zero values;
// mandatory ones are validated by the add* methods.
type runArgs struct {
	Workflow string `json:"workflow"`
	Nodes    int    `json:"nodes"`
	Slots    int    `json:"slots"`
	Skew     bool   `json:"skew"`
}

type taskArgs struct {
	Job   string `json:"job"`
	Stage string `json:"stage"`
	Task  *int   `json:"task"`
	Sub   string `json:"sub"`
	// Bytes maps resource names (cluster.Resource.String()) to D_X.
	Bytes      map[string]float64 `json:"bytes"`
	Bottleneck string             `json:"bottleneck"`
}

func decodeArgs(raw json.RawMessage, into any) error {
	if len(raw) == 0 {
		return fmt.Errorf("missing args")
	}
	if err := json.Unmarshal(raw, into); err != nil {
		return fmt.Errorf("bad args: %w", err)
	}
	return nil
}

func (s *Session) addRunInfo(ev chromeInEvent) error {
	var a runArgs
	if err := decodeArgs(ev.Args, &a); err != nil {
		return err
	}
	if a.Nodes <= 0 || a.Slots <= 0 {
		return fmt.Errorf("run metadata needs positive nodes/slots, got %d/%d", a.Nodes, a.Slots)
	}
	if s.Nodes != 0 && s.Nodes != a.Nodes {
		return fmt.Errorf("conflicting node counts %d and %d", s.Nodes, a.Nodes)
	}
	s.Nodes = a.Nodes
	if a.Slots > s.Slots {
		s.Slots = a.Slots
	}
	s.Skewed = s.Skewed || a.Skew
	if a.Workflow != "" {
		s.Workflows = append(s.Workflows, a.Workflow)
	}
	return nil
}

// span validates and locates the task a task/sub-stage span belongs to.
func (s *Session) span(ev chromeInEvent, a *taskArgs) (*traceTask, error) {
	if a.Job == "" {
		return nil, fmt.Errorf("span without job arg")
	}
	var st workload.Stage
	switch a.Stage {
	case "map":
		st = workload.Map
	case "reduce":
		st = workload.Reduce
	default:
		return nil, fmt.Errorf("span with unknown stage %q", a.Stage)
	}
	if a.Task == nil || *a.Task < 0 {
		return nil, fmt.Errorf("span without a valid task index")
	}
	if ev.Dur < 0 || math.IsInf(ev.TS, 0) || math.IsInf(ev.Dur, 0) ||
		math.IsNaN(ev.TS) || math.IsNaN(ev.Dur) {
		return nil, fmt.Errorf("span with invalid timing ts=%v dur=%v", ev.TS, ev.Dur)
	}
	j := s.jobs[a.Job]
	if j == nil {
		j = &traceJob{stages: make(map[workload.Stage]*traceStage)}
		s.jobs[a.Job] = j
	}
	sg := j.stages[st]
	if sg == nil {
		sg = &traceStage{tasks: make(map[int]*traceTask)}
		j.stages[st] = sg
	}
	t := sg.tasks[*a.Task]
	if t == nil {
		t = &traceTask{}
		sg.tasks[*a.Task] = t
	}
	return t, nil
}

func (s *Session) addTaskSpan(ev chromeInEvent) error {
	var a taskArgs
	if err := decodeArgs(ev.Args, &a); err != nil {
		return err
	}
	t, err := s.span(ev, &a)
	if err != nil {
		return err
	}
	t.start, t.dur, t.seen = ev.TS/1e6, ev.Dur/1e6, true
	return nil
}

func (s *Session) addSubStageSpan(ev chromeInEvent) error {
	var a taskArgs
	if err := decodeArgs(ev.Args, &a); err != nil {
		return err
	}
	t, err := s.span(ev, &a)
	if err != nil {
		return err
	}
	sub := SubSample{
		Name:       a.Sub,
		Start:      ev.TS / 1e6,
		Dur:        ev.Dur / 1e6,
		Bottleneck: a.Bottleneck,
	}
	if sub.Name == "" {
		sub.Name = ev.Name // pre-args traces carried the label as the span name
	}
	for name, b := range a.Bytes {
		r, ok := resourceByName(name)
		if !ok {
			return fmt.Errorf("sub-stage with unknown resource %q in bytes", name)
		}
		if b < 0 || math.IsInf(b, 0) || math.IsNaN(b) {
			return fmt.Errorf("sub-stage with invalid %s byte count %v", name, b)
		}
		sub.Bytes[r] = b
	}
	t.subs = append(t.subs, sub)
	return nil
}

func resourceByName(name string) (cluster.Resource, bool) {
	for _, r := range cluster.Resources() {
		if r.String() == name {
			return r, true
		}
	}
	return 0, false
}

// Merge combines several parsed sessions (multi-file probe recordings)
// into one: jobs contribute their task samples side by side, with task
// indices from later sessions offset past the earlier ones so repeated
// probes widen the sample set instead of overwriting it. Node counts
// must agree; Slots takes the maximum.
func Merge(sessions ...*Session) (*Session, error) {
	if len(sessions) == 0 {
		return nil, fmt.Errorf("calibrate: merge: no sessions")
	}
	out := &Session{jobs: make(map[string]*traceJob)}
	for _, in := range sessions {
		if in == nil {
			return nil, fmt.Errorf("calibrate: merge: nil session")
		}
		if out.Nodes != 0 && in.Nodes != out.Nodes {
			return nil, fmt.Errorf("calibrate: merge: sessions recorded on different clusters (%d vs %d nodes)",
				out.Nodes, in.Nodes)
		}
		out.Nodes = in.Nodes
		if in.Slots > out.Slots {
			out.Slots = in.Slots
		}
		out.Skewed = out.Skewed || in.Skewed
		out.Workflows = append(out.Workflows, in.Workflows...)
		for name, j := range in.jobs {
			oj := out.jobs[name]
			if oj == nil {
				oj = &traceJob{stages: make(map[workload.Stage]*traceStage)}
				out.jobs[name] = oj
			}
			for st, sg := range j.stages {
				osg := oj.stages[st]
				if osg == nil {
					osg = &traceStage{tasks: make(map[int]*traceTask)}
					oj.stages[st] = osg
				}
				base := 0
				for idx := range osg.tasks {
					if idx >= base {
						base = idx + 1
					}
				}
				for idx, t := range sg.tasks {
					osg.tasks[base+idx] = t
				}
			}
		}
	}
	sort.Strings(out.Workflows)
	return out, nil
}

// Result reconstructs the named job's measurements as a simulator.Result,
// the shape the inversion arithmetic consumes. Only tasks whose task
// span completed are included (a truncated trace loses in-flight tasks);
// sub-stage durations are ordered by their recorded start times.
func (s *Session) Result(job string) (*simulator.Result, error) {
	j := s.jobs[job]
	if j == nil {
		return nil, fmt.Errorf("trace session has no job %q (recorded: %s)",
			job, strings.Join(s.Jobs(), ", "))
	}
	res := &simulator.Result{Workflow: job}
	for _, st := range []workload.Stage{workload.Map, workload.Reduce} {
		sg := j.stages[st]
		if sg == nil {
			continue
		}
		idxs := make([]int, 0, len(sg.tasks))
		for idx, t := range sg.tasks {
			if t.seen {
				idxs = append(idxs, idx)
			}
		}
		if len(idxs) == 0 {
			continue
		}
		sort.Ints(idxs)
		meta := simulator.StageRecord{Job: job, Stage: st}
		for _, idx := range idxs {
			t := sg.tasks[idx]
			rec := simulator.TaskRecord{
				Job: job, Stage: st, Index: idx,
				Start: units.Seconds(t.start),
				End:   units.Seconds(t.start + t.dur),
			}
			subs := append([]SubSample(nil), t.subs...)
			sort.Slice(subs, func(a, b int) bool { return subs[a].Start < subs[b].Start })
			for _, sub := range subs {
				rec.SubStages = append(rec.SubStages, units.Seconds(sub.Dur))
			}
			res.Tasks = append(res.Tasks, rec)
			meta.TaskTimes = append(meta.TaskTimes, rec.Duration())
			if meta.Start == 0 || rec.Start < meta.Start {
				meta.Start = rec.Start
			}
			if rec.End > meta.End {
				meta.End = rec.End
			}
		}
		res.Stages = append(res.Stages, meta)
		if meta.End > res.Makespan {
			res.Makespan = meta.End
		}
	}
	if len(res.Tasks) == 0 {
		return nil, fmt.Errorf("trace session recorded no completed tasks for job %q", job)
	}
	return res, nil
}

// TraceRunner adapts a parsed session into a Runner: instead of
// executing a probe it serves the recorded measurements of the job with
// the same name — the offline counterpart of SimulatorRunner. The slot
// limit is ignored; the recorded session already fixed the concurrency.
func TraceRunner(s *Session) Runner {
	return func(p workload.JobProfile, slotLimit int) (*simulator.Result, error) {
		return s.Result(p.Name)
	}
}

// samples returns the recorded sub-stage samples of (job, stage, sub),
// one per completed task, in task order.
func (s *Session) samples(job string, st workload.Stage, sub string) []SubSample {
	j := s.jobs[job]
	if j == nil {
		return nil
	}
	sg := j.stages[st]
	if sg == nil {
		return nil
	}
	idxs := make([]int, 0, len(sg.tasks))
	for idx, t := range sg.tasks {
		if t.seen {
			idxs = append(idxs, idx)
		}
	}
	sort.Ints(idxs)
	var out []SubSample
	for _, idx := range idxs {
		for _, ss := range sg.tasks[idx].subs {
			if ss.Name == sub {
				out = append(out, ss)
			}
		}
	}
	return out
}

// ParseChromeTraceFile parses one trace file from disk.
func ParseChromeTraceFile(path string) (*Session, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("calibrate: %w", err)
	}
	defer f.Close()
	s, err := ParseChromeTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return s, nil
}
