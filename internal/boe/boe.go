// Package boe implements the Bottleneck Oriented Estimation model of the
// paper (§III): task-level execution time estimation for data-parallel
// jobs. A task is a sequence of pipelined sub-stages; the sub-stage time
// is the time of its bottleneck operation,
//
//	t_σ = max_X  D_X / (μ_X(Δ)·θ_X)
//
// where D_X is the bytes operation X moves, θ_X the aggregate resource
// throughput and μ_X(Δ) the per-task share at degree of parallelism Δ.
// The share is computed by progressive-filling max-min fairness (package
// fairshare), which also yields the actual usage p_X < 1 of non-bottleneck
// resources. For parallel jobs the model takes every concurrently running
// task group into account, so a job's task time changes when a neighbour
// job's bottleneck moves — the Figure 1 phenomenon (27 s → 24 s → 20 s).
package boe

import (
	"fmt"
	"math"
	"strings"
	"time"

	"boedag/internal/cluster"
	"boedag/internal/fairshare"
	"boedag/internal/units"
	"boedag/internal/workload"
)

// Model estimates task execution times on a given cluster.
type Model struct {
	// Spec is the cluster the jobs run on.
	Spec cluster.Spec
	// EqualSplit switches the μ(Δ) allocation from progressive-filling
	// max-min fairness to the naive 1/Δ split (ablation; see DESIGN.md §5).
	EqualSplit bool
}

// New returns a Model for the cluster.
func New(spec cluster.Spec) *Model { return &Model{Spec: spec} }

// AggregateSubStage selects the steady-state view of a task group: its
// tasks are spread across sub-stages in proportion to sub-stage length,
// so the group's aggregate demand is the sum over sub-stages. This is the
// right environment model for a neighbouring job mid-stage, where waves of
// tasks pipeline through sub-stages continuously.
const AggregateSubStage = -1

// TaskGroup describes Δ identical tasks of one job stage running
// concurrently, currently executing the sub-stage with index SubStage
// (or AggregateSubStage for the steady-state mixture).
type TaskGroup struct {
	Profile     workload.JobProfile
	Stage       workload.Stage
	SubStage    int
	Parallelism int
}

// OpEstimate is the model's view of one pipelined operation: the bytes it
// moves, the per-task rate the allocation grants it, and the resulting
// non-overlapped time. The operation with the largest time is the
// sub-stage bottleneck.
type OpEstimate struct {
	Resource cluster.Resource
	Bytes    units.Bytes
	Rate     units.Rate
	Time     time.Duration
}

// SubStageEstimate is the model's output for one sub-stage of one group.
type SubStageEstimate struct {
	Name       string
	Duration   time.Duration
	Bottleneck cluster.Resource
	Ops        []OpEstimate
	// Utilization[r] is the estimated cluster-wide utilization of resource
	// r during this sub-stage (shared across all concurrent groups).
	Utilization [cluster.NumResources]float64
}

// TaskEstimate is the model's output for a complete task: the sequence of
// its sub-stage estimates and the total duration.
type TaskEstimate struct {
	Stage     workload.Stage
	SubStages []SubStageEstimate
	Duration  time.Duration
}

// Bottlenecks returns the distinct bottleneck resources across the task's
// sub-stages, in execution order.
func (t TaskEstimate) Bottlenecks() []cluster.Resource {
	var out []cluster.Resource
	seen := make(map[cluster.Resource]bool)
	for _, ss := range t.SubStages {
		if !seen[ss.Bottleneck] {
			seen[ss.Bottleneck] = true
			out = append(out, ss.Bottleneck)
		}
	}
	return out
}

// String renders a compact summary, e.g. "map 27.3s [cpu]".
func (t TaskEstimate) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %.1fs [", t.Stage, t.Duration.Seconds())
	for i, r := range t.Bottlenecks() {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(r.String())
	}
	b.WriteString("]")
	return b.String()
}

// capacities returns the cluster-aggregate throughput θ_X per resource.
func (m *Model) capacities() [cluster.NumResources]units.Rate {
	var caps [cluster.NumResources]units.Rate
	for _, r := range cluster.Resources() {
		caps[r] = m.Spec.TotalCapacity(r)
	}
	return caps
}

// consumerFor converts one task group's current sub-stage into a
// fairshare consumer: the demand vector is the sub-stage's op bytes
// (progress is measured in "sub-stage completions", so a rate of x means
// the task finishes the sub-stage in 1/x seconds), and the per-task cap
// encodes that a task is a single thread limited to one core's
// throughput.
func (m *Model) consumerFor(g TaskGroup, ss workload.SubStage) fairshare.Consumer {
	c := fairshare.Consumer{Count: g.Parallelism, CapResource: cluster.CPU}
	maxRate := 0.0
	for _, op := range ss.Ops {
		if op.Bytes <= 0 {
			continue
		}
		c.Demand[op.Resource] = float64(op.Bytes)
		// A single task cannot drive a resource past one node's device
		// rate (one core's compute, one NIC's line rate, one node's
		// disks), no matter how idle the cluster-wide pool is.
		r := float64(m.Spec.Node.PerTaskCap(op.Resource)) / float64(op.Bytes)
		if maxRate == 0 || r < maxRate {
			maxRate = r
			c.CapResource = op.Resource
		}
	}
	c.MaxRate = maxRate
	return c
}

// EstimateState estimates, for every group, the duration of its *current*
// sub-stage under contention from all the other groups. This is the
// primitive the state-based workflow model calls once per workflow state.
func (m *Model) EstimateState(groups []TaskGroup) []SubStageEstimate {
	subs := make([]workload.SubStage, len(groups))
	consumers := make([]fairshare.Consumer, len(groups))
	for i, g := range groups {
		all := g.Profile.SubStages(g.Stage, m.Spec)
		switch {
		case g.SubStage == AggregateSubStage:
			subs[i] = aggregate(all)
		case g.SubStage < 0 || g.SubStage >= len(all):
			subs[i] = workload.SubStage{Name: "done"}
		default:
			subs[i] = all[g.SubStage]
		}
		consumers[i] = m.consumerFor(groups[i], subs[i])
	}
	alloc := m.allocate(consumers)

	// Tasks demanding each resource, for the equal-share μ_X(Δ) = 1/Δ_X
	// view the paper's per-operation times use.
	var users [cluster.NumResources]int
	for i, c := range consumers {
		for r := 0; r < cluster.NumResources; r++ {
			if c.Demand[r] > 0 {
				users[r] += groups[i].Parallelism
			}
		}
	}

	out := make([]SubStageEstimate, len(groups))
	for i := range groups {
		est := SubStageEstimate{
			Name:        subs[i].Name,
			Bottleneck:  alloc.Bottleneck[i],
			Utilization: alloc.Utilization,
		}
		rate := alloc.Rate[i]
		if rate > 0 && len(subs[i].Ops) > 0 {
			est.Duration = units.Seconds(1 / rate)
			for _, op := range subs[i].Ops {
				// The paper's t_X = D_X/(μ_X(Δ)·θ_X): the op's time at its
				// equal share of resource X among the Δ_X tasks demanding
				// it, capped by what a single task can drive. For a lone
				// group the largest of these equals the sub-stage duration;
				// their ratios are the Headroom report.
				share := m.Spec.TotalCapacity(op.Resource).PerTask(users[op.Resource])
				share = share.Min(m.Spec.Node.PerTaskCap(op.Resource))
				est.Ops = append(est.Ops, OpEstimate{
					Resource: op.Resource,
					Bytes:    op.Bytes,
					Rate:     share,
					Time:     units.Div(op.Bytes, share),
				})
			}
		}
		out[i] = est
	}
	return out
}

func (m *Model) allocate(consumers []fairshare.Consumer) fairshare.Result {
	if m.EqualSplit {
		return fairshare.EqualSplit(m.capacities(), consumers)
	}
	return fairshare.Allocate(m.capacities(), consumers)
}

// TaskTime estimates the full execution time of one task of (profile,
// stage) when Δ = parallelism sibling tasks run concurrently and no other
// job contends — the single-job setting of the paper's Figure 6. The task
// time is the sum of its sub-stage times, each estimated at parallelism Δ.
func (m *Model) TaskTime(p workload.JobProfile, s workload.Stage, parallelism int) TaskEstimate {
	return m.TaskTimeWith(p, s, parallelism, nil)
}

// TaskTimeWith estimates the task time of (p, s) at the given parallelism
// while the environment groups run alongside — the parallel-job setting of
// Table II. Each sub-stage of the target task is estimated against the
// environment held at its own current sub-stage.
func (m *Model) TaskTimeWith(p workload.JobProfile, s workload.Stage, parallelism int, env []TaskGroup) TaskEstimate {
	all := p.SubStages(s, m.Spec)
	est := TaskEstimate{Stage: s}
	for k := range all {
		groups := make([]TaskGroup, 0, len(env)+1)
		groups = append(groups, TaskGroup{Profile: p, Stage: s, SubStage: k, Parallelism: parallelism})
		groups = append(groups, env...)
		ssEst := m.EstimateState(groups)[0]
		est.SubStages = append(est.SubStages, ssEst)
		est.Duration += ssEst.Duration
	}
	return est
}

// aggregate folds a task's sub-stages into one demand vector summed per
// resource (see AggregateSubStage).
func aggregate(subs []workload.SubStage) workload.SubStage {
	var total [cluster.NumResources]units.Bytes
	for _, ss := range subs {
		for _, op := range ss.Ops {
			total[op.Resource] += op.Bytes
		}
	}
	out := workload.SubStage{Name: "aggregate"}
	for _, r := range cluster.Resources() {
		if total[r] > 0 {
			out.Ops = append(out.Ops, workload.OpDemand{Resource: r, Bytes: total[r]})
		}
	}
	return out
}

// StageTime estimates the wall-clock duration of an entire job stage run
// alone at the given parallelism: the tasks execute in ⌈N/Δ⌉ waves of
// TaskTime each (the discrete wave model; see DESIGN.md §5 for the fluid
// ablation).
func (m *Model) StageTime(p workload.JobProfile, s workload.Stage, parallelism int) time.Duration {
	n := p.Tasks(s)
	if n == 0 || parallelism <= 0 {
		return 0
	}
	task := m.TaskTime(p, s, min(parallelism, n))
	waves := (n + parallelism - 1) / parallelism
	return time.Duration(waves) * task.Duration
}

// Headroom reports how decisively the sub-stage's bottleneck wins: the
// ratio of the bottleneck operation's time to the runner-up's. A headroom
// of 1.6 means speeding the bottleneck resource up by more than 1.6×
// (hardware upgrade, compression, fewer replicas) moves the bottleneck
// elsewhere and further spending stops paying — the what-if question
// capacity planners ask. Sub-stages with fewer than two operations return
// +Inf (nothing to shift to).
func (ss SubStageEstimate) Headroom() float64 {
	if len(ss.Ops) < 2 {
		return math.Inf(1)
	}
	var first, second time.Duration
	for _, op := range ss.Ops {
		switch {
		case op.Time > first:
			second = first
			first = op.Time
		case op.Time > second:
			second = op.Time
		}
	}
	if second <= 0 {
		return math.Inf(1)
	}
	return first.Seconds() / second.Seconds()
}
