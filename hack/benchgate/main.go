// Command benchgate is the perf-ledger gate behind hack/verify.sh: it
// validates BENCH_*.json files and compares a fresh ledger against the
// committed baseline with a relative tolerance band, benchstat-style —
// every tracked quantity is printed with its delta, and any regression
// (or vanished benchmark) fails the run.
//
// Usage:
//
//	benchgate -validate FILE...
//	benchgate -base hack/bench_baseline.json -new /tmp/BENCH_fresh.json -tol 0.75
//	benchgate -base ... -new ... -inject 2.0   # self-test: must fail
//
// -inject multiplies the fresh ledger's latencies and ns/op (and divides
// its throughput) by the given factor before comparing. verify.sh uses
// it to prove the gate actually fires: a run with -inject 2.0 must exit
// non-zero, or the gate is decorative.
package main

import (
	"flag"
	"fmt"
	"os"

	"boedag/internal/perfledger"
)

func main() {
	var (
		validate = flag.Bool("validate", false, "validate the ledger files given as arguments")
		base     = flag.String("base", "", "baseline ledger (the committed trajectory point)")
		fresh    = flag.String("new", "", "fresh ledger to hold against the baseline")
		tol      = flag.Float64("tol", 0.75, "relative tolerance band (0.75 = fail beyond 1.75x slowdown)")
		inject   = flag.Float64("inject", 1, "multiply fresh latencies and ns/op by this factor first (gate self-test)")
	)
	flag.Parse()

	switch {
	case *validate:
		if flag.NArg() == 0 {
			fatal(fmt.Errorf("-validate needs ledger files as arguments"))
		}
		for _, path := range flag.Args() {
			l, err := perfledger.Read(path)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s: valid (schema %d, source %s)\n", path, l.Schema, l.Source)
		}
	case *base != "" && *fresh != "":
		b, err := perfledger.Read(*base)
		if err != nil {
			fatal(err)
		}
		f, err := perfledger.Read(*fresh)
		if err != nil {
			fatal(err)
		}
		if *inject != 1 {
			slowDown(&f, *inject)
			fmt.Printf("injected a synthetic %.2fx slowdown into %s\n", *inject, *fresh)
		}
		deltas := perfledger.Compare(b, f, *tol)
		if len(deltas) == 0 {
			fatal(fmt.Errorf("nothing to compare between %s and %s", *base, *fresh))
		}
		fmt.Printf("%-44s %12s %12s %8s\n", "quantity", "base", "new", "ratio")
		for _, d := range deltas {
			mark := ""
			if d.Missing {
				mark = "  MISSING"
			} else if d.Regressed {
				mark = "  REGRESSED"
			}
			fmt.Printf("%-44s %12.4g %12.4g %7.2fx%s\n", d.Name, d.Old, d.New, d.Ratio, mark)
		}
		if regs := perfledger.Regressions(deltas); len(regs) > 0 {
			fmt.Printf("FAIL: %d quantities regressed beyond the %.0f%% band\n",
				len(regs), *tol*100)
			os.Exit(1)
		}
		fmt.Printf("gate OK: all quantities within the %.0f%% band\n", *tol*100)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// slowDown degrades a ledger in place: the synthetic regression the
// gate's self-test injects.
func slowDown(l *perfledger.Ledger, factor float64) {
	if s := l.Service; s != nil {
		s.ThroughputRPS /= factor
		s.Latency.MeanS *= factor
		s.Latency.P50S *= factor
		s.Latency.P90S *= factor
		s.Latency.P99S *= factor
		s.Latency.MaxS *= factor
	}
	for i := range l.Benchmarks {
		l.Benchmarks[i].NsPerOp *= factor
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
