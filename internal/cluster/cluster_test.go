package cluster

import (
	"strings"
	"testing"

	"boedag/internal/units"
)

func validNode() NodeSpec {
	return NodeSpec{
		Cores:          6,
		CoreThroughput: 50 * units.MBps,
		Disks:          2,
		DiskReadRate:   100 * units.MBps,
		DiskWriteRate:  100 * units.MBps,
		NetworkRate:    125 * units.MBps,
		MemoryMB:       32 * 1024,
	}
}

func TestNodeValidateRejectsEachField(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*NodeSpec)
		want   string
	}{
		{"no cores", func(n *NodeSpec) { n.Cores = 0 }, "core"},
		{"no core throughput", func(n *NodeSpec) { n.CoreThroughput = 0 }, "throughput"},
		{"no disks", func(n *NodeSpec) { n.Disks = 0 }, "disk"},
		{"no disk read", func(n *NodeSpec) { n.DiskReadRate = 0 }, "disk rates"},
		{"negative disk write", func(n *NodeSpec) { n.DiskWriteRate = -1 }, "disk rates"},
		{"no network", func(n *NodeSpec) { n.NetworkRate = 0 }, "network"},
		{"no memory", func(n *NodeSpec) { n.MemoryMB = 0 }, "memory"},
	}
	for _, c := range cases {
		n := validNode()
		c.mutate(&n)
		err := n.Validate()
		if err == nil {
			t.Errorf("%s: Validate() = nil, want error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
	if err := validNode().Validate(); err != nil {
		t.Errorf("valid node rejected: %v", err)
	}
}

func TestSpecValidate(t *testing.T) {
	s := Spec{Nodes: 0, Node: validNode()}
	if s.Validate() == nil {
		t.Error("zero nodes accepted")
	}
	s = Spec{Nodes: 1, SlotsPerNode: -1, Node: validNode()}
	if s.Validate() == nil {
		t.Error("negative slots accepted")
	}
	s = Spec{Nodes: 3, Node: validNode()}
	if err := s.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestNodeCapacity(t *testing.T) {
	n := validNode()
	cases := []struct {
		r    Resource
		want units.Rate
	}{
		{CPU, 300 * units.MBps},       // 6 cores × 50
		{DiskRead, 200 * units.MBps},  // 2 disks × 100
		{DiskWrite, 200 * units.MBps}, // 2 disks × 100
		{Network, 125 * units.MBps},
	}
	for _, c := range cases {
		if got := n.Capacity(c.r); got != c.want {
			t.Errorf("Capacity(%s) = %v, want %v", c.r, got, c.want)
		}
	}
	if got := n.Capacity(Resource(99)); got != 0 {
		t.Errorf("Capacity(bogus) = %v, want 0", got)
	}
}

func TestPerTaskCap(t *testing.T) {
	n := validNode()
	if got := n.PerTaskCap(CPU); got != 50*units.MBps {
		t.Errorf("PerTaskCap(CPU) = %v, want one core (50MB/s)", got)
	}
	if got := n.PerTaskCap(DiskRead); got != n.Capacity(DiskRead) {
		t.Errorf("PerTaskCap(DiskRead) = %v, want full device %v", got, n.Capacity(DiskRead))
	}
	if got := n.PerTaskCap(Network); got != n.Capacity(Network) {
		t.Errorf("PerTaskCap(Network) = %v, want line rate", got)
	}
}

func TestSpecTotals(t *testing.T) {
	s := Spec{Nodes: 11, SlotsPerNode: 12, Node: validNode()}
	if got := s.TotalCores(); got != 66 {
		t.Errorf("TotalCores = %d, want 66", got)
	}
	if got := s.TotalSlots(); got != 132 {
		t.Errorf("TotalSlots = %d, want 132", got)
	}
	if got := s.TotalMemoryMB(); got != 11*32*1024 {
		t.Errorf("TotalMemoryMB = %d, want %d", got, 11*32*1024)
	}
	if got := s.TotalCapacity(CPU); got != 11*300*units.MBps {
		t.Errorf("TotalCapacity(CPU) = %v", got)
	}
	// Slots default to cores when unset.
	s.SlotsPerNode = 0
	if got := s.TotalSlots(); got != 66 {
		t.Errorf("TotalSlots (default) = %d, want 66", got)
	}
}

func TestResourceString(t *testing.T) {
	want := map[Resource]string{
		CPU: "cpu", DiskRead: "disk-read", DiskWrite: "disk-write", Network: "network",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), s)
		}
	}
	if got := Resource(42).String(); !strings.Contains(got, "42") {
		t.Errorf("unknown resource String() = %q", got)
	}
}

func TestResourcesListsAll(t *testing.T) {
	rs := Resources()
	if len(rs) != NumResources {
		t.Fatalf("Resources() has %d entries, want %d", len(rs), NumResources)
	}
	seen := map[Resource]bool{}
	for _, r := range rs {
		if seen[r] {
			t.Errorf("duplicate resource %s", r)
		}
		seen[r] = true
	}
}

func TestPaperCluster(t *testing.T) {
	s := PaperCluster()
	if err := s.Validate(); err != nil {
		t.Fatalf("paper cluster invalid: %v", err)
	}
	if s.Nodes != 11 {
		t.Errorf("paper cluster has %d nodes, want 11 (§V-A)", s.Nodes)
	}
	if s.Node.Cores != 6 {
		t.Errorf("paper node has %d cores, want 6", s.Node.Cores)
	}
	if s.Node.Disks != 2 {
		t.Errorf("paper node has %d disks, want 2", s.Node.Disks)
	}
	if s.Node.MemoryMB != 32*1024 {
		t.Errorf("paper node has %d MB memory, want 32 GB", s.Node.MemoryMB)
	}
	if s.TotalSlots() <= s.TotalCores() {
		t.Error("paper cluster should over-subscribe slots beyond cores for the Δ=12 sweep")
	}
}

func TestSingleNodeAndExampleNode(t *testing.T) {
	s := SingleNode(ExampleNode())
	if err := s.Validate(); err != nil {
		t.Fatalf("example node invalid: %v", err)
	}
	if s.Nodes != 1 {
		t.Errorf("SingleNode has %d nodes", s.Nodes)
	}
	// Figure 4's numbers: aggregate read 500 MB/s, network 100 MB/s.
	if got := s.TotalCapacity(DiskRead); got != 500*units.MBps {
		t.Errorf("example read capacity = %v, want 500MB/s", got)
	}
	if got := s.TotalCapacity(Network); got != 100*units.MBps {
		t.Errorf("example network capacity = %v, want 100MB/s", got)
	}
}
