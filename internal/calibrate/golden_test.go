package calibrate

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"boedag/internal/cluster"
	"boedag/internal/units"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenCompare checks got against testdata/<name>, rewriting when
// -update is set — the same contract as internal/trace's goldens. The
// probe session is fully deterministic (fixed seed, skew off), so both
// fixtures are byte-stable.
func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/calibrate -update` to create golden files)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden file; diff against %s or rerun with -update\n%s",
			name, path, got)
	}
}

// goldenSpec is a deliberately small cluster (30 probe tasks total, a
// few-hundred-line trace) that still satisfies every probe isolation
// precondition, keeping the committed fixture reviewable.
func goldenSpec() cluster.Spec {
	return cluster.Spec{
		Nodes: 3, SlotsPerNode: 2,
		Node: cluster.NodeSpec{
			Cores: 2, CoreThroughput: 50 * units.MBps,
			Disks: 1, DiskReadRate: 150 * units.MBps, DiskWriteRate: 120 * units.MBps,
			NetworkRate: 60 * units.MBps, MemoryMB: 8 * 1024,
		},
	}
}

// TestGoldenProbeSession pins the on-disk trace schema: if the Chrome
// exporter's load-bearing fields drift (args keys, categories, the run
// metadata), this golden changes and the diff shows the new contract.
func TestGoldenProbeSession(t *testing.T) {
	goldenCompare(t, "probe_session.trace.json", recordProbeTrace(t, goldenSpec()))
}

// TestGoldenRecoveredSpec calibrates from the committed fixture itself —
// proving a trace recorded by an older binary (the file in git, not the
// bytes this build emits) still yields the expected spec.
func TestGoldenRecoveredSpec(t *testing.T) {
	if *update {
		// Refresh the trace fixture first so the recovered spec matches it.
		goldenCompare(t, "probe_session.trace.json", recordProbeTrace(t, goldenSpec()))
	}
	cal, err := FromTraceFiles(filepath.Join("testdata", "probe_session.trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	spec := goldenSpec()
	recovered := struct {
		Calibration *Calibration
		// NodeSpec is the estimate folded back into a per-node spec with
		// the operator-supplied core and memory counts — what `calibrate
		// -from-trace -spec-out` writes for dagsim.
		NodeSpec cluster.NodeSpec
	}{cal, cal.NodeSpec(cal.Nodes, spec.Node.Cores, spec.Node.MemoryMB)}
	got, err := json.MarshalIndent(recovered, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	goldenCompare(t, "recovered_spec.json", got)
}
