// Progressbar demonstrates the online progress indicator built on the
// state-based cost model — the ParaTimer-style application from the
// paper's introduction. It simulates the WC+TS hybrid workload, then
// replays it: at each 10% of true completion it takes the snapshot a
// resource manager would expose (finished and in-flight tasks per job),
// re-estimates the remaining time with Algorithm 1, and compares against
// the truth.
//
// Run it with:
//
//	go run ./examples/progressbar
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"boedag"
)

func main() {
	spec := boedag.PaperCluster()
	flow := boedag.ParallelFlows("WC+TS",
		boedag.Single(boedag.WordCount(100*boedag.GB)),
		boedag.Single(boedag.TeraSort(100*boedag.GB)))

	res, err := boedag.NewSimulator(spec, boedag.SimOptions{Seed: 1}).Run(flow)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s ran for %.1fs — replaying it through the progress indicator\n\n",
		flow.Name, res.Makespan.Seconds())

	// The indicator predicts from profiles of past runs plus the BOE model
	// as fallback — the realistic deployment (historical profiles exist,
	// the model covers the rest).
	timer := &boedag.ProfileTimer{
		Profiles: boedag.CaptureProfiles(res),
		Fallback: &boedag.BOETimer{Model: boedag.NewBOE(spec), TaskStartOverhead: time.Second},
	}
	indicator := &boedag.ProgressIndicator{
		Estimator: boedag.NewEstimator(spec, timer, boedag.EstimatorOptions{Mode: boedag.NormalMode}),
		Flow:      flow,
	}

	fractions := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	points, err := boedag.ProgressCurve(indicator, res, fractions)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  done   bar                    predicted-left   actual-left   accuracy")
	for _, p := range points {
		bar := strings.Repeat("█", int(p.PercentComplete/5)) +
			strings.Repeat("·", 20-int(p.PercentComplete/5))
		fmt.Printf("  %5.1f%%  %s  %9.1fs  %11.1fs  %8.1f%%\n",
			p.PercentComplete, bar,
			p.PredictedRemaining.Seconds(), p.ActualRemaining.Seconds(),
			100*p.Accuracy())
	}
}
