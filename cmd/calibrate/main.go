// Command calibrate probes a (simulated) cluster with the calibration
// suite and prints the recovered resource throughputs — the θ_X constants
// the BOE model consumes. Against the built-in simulator it demonstrates
// the closed loop: probing the simulated paper cluster recovers the paper
// cluster's specification.
//
// Usage:
//
//	calibrate                     # probe the default paper cluster
//	calibrate -nodes 20 -cores 8  # probe a custom-sized simulated cluster
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"boedag/internal/calibrate"
	"boedag/internal/cliobs"
	"boedag/internal/cluster"
	"boedag/internal/units"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 11, "cluster node count")
		cores   = flag.Int("cores", 6, "cores per node")
		coreMB  = flag.Float64("core-mbps", 50, "true per-core throughput (MB/s) of the simulated cluster")
		netMB   = flag.Float64("net-mbps", 125, "true NIC rate (MB/s)")
		diskMB  = flag.Float64("disk-mbps", 100, "true per-disk rate (MB/s)")
		disks   = flag.Int("disks", 2, "disks per node")
		slotsPN = flag.Int("slots", 12, "task slots per node")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent probe executions (1 = serial)")
	)
	var ob cliobs.Flags
	ob.Register(nil)
	flag.Parse()

	observe, err := ob.Options()
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}

	spec := cluster.Spec{
		Nodes:        *nodes,
		SlotsPerNode: *slotsPN,
		Node: cluster.NodeSpec{
			Cores:          *cores,
			CoreThroughput: units.Rate(*coreMB) * units.MBps,
			Disks:          *disks,
			DiskReadRate:   units.Rate(*diskMB) * units.MBps,
			DiskWriteRate:  units.Rate(*diskMB) * units.MBps,
			NetworkRate:    units.Rate(*netMB) * units.MBps,
			MemoryMB:       32 * 1024,
		},
	}
	if err := spec.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}

	est, err := calibrate.ClusterWith(calibrate.SimulatorRunner(spec, observe), spec.TotalSlots(), spec.Nodes,
		calibrate.Options{Workers: *workers, Observe: observe})
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
	fmt.Printf("probed %d nodes (%d slots):\n", spec.Nodes, spec.TotalSlots())
	fmt.Printf("  task launch overhead: %v\n", est.TaskOverhead)
	fmt.Printf("  core throughput:      %v   (true %v)\n",
		est.CoreThroughput, spec.Node.CoreThroughput)
	fmt.Printf("  disk read pool:       %v   (true %v)\n",
		est.DiskReadPool, spec.TotalCapacity(cluster.DiskRead))
	fmt.Printf("  disk write pool:      %v   (true %v)\n",
		est.DiskWritePool, spec.TotalCapacity(cluster.DiskWrite))
	fmt.Printf("  network pool:         %v   (true %v)\n",
		est.NetworkPool, spec.TotalCapacity(cluster.Network))
	node := est.NodeSpec(spec.Nodes, spec.Node.Cores, spec.Node.MemoryMB)
	fmt.Printf("\nrecovered per-node spec: %d cores × %v, disk %v/%v, NIC %v\n",
		node.Cores, node.CoreThroughput, node.DiskReadRate, node.DiskWriteRate, node.NetworkRate)
	if err := ob.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
}
