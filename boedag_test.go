package boedag_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"boedag"
)

// TestPublicAPIRoundTrip exercises the exported surface end to end the
// way the README's quickstart does: model a job, simulate it, estimate
// it, compare.
func TestPublicAPIRoundTrip(t *testing.T) {
	spec := boedag.PaperCluster()
	model := boedag.NewBOE(spec)

	wc := boedag.WordCount(10 * boedag.GB)
	est := model.TaskTime(wc, boedag.Map, 66)
	if est.Duration <= 0 {
		t.Fatal("BOE returned a non-positive task time")
	}
	if len(est.Bottlenecks()) == 0 {
		t.Fatal("no bottleneck identified")
	}

	flow := boedag.Single(wc)
	res, err := boedag.NewSimulator(spec, boedag.SimOptions{Seed: 1}).Run(flow)
	if err != nil {
		t.Fatal(err)
	}
	timer := &boedag.BOETimer{Model: model, TaskStartOverhead: time.Second}
	estimator := boedag.NewEstimator(spec, timer, boedag.EstimatorOptions{Mode: boedag.NormalMode})
	plan, err := estimator.Estimate(flow)
	if err != nil {
		t.Fatal(err)
	}
	if acc := boedag.Accuracy(plan.Makespan, res.Makespan); acc < 0.8 {
		t.Errorf("end-to-end accuracy %.2f (plan %v vs sim %v)", acc, plan.Makespan, res.Makespan)
	}
}

func TestPublicWorkloadBuilders(t *testing.T) {
	schema := boedag.PaperTPCHSchema()
	q21, err := boedag.TPCHQuery(21, schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(q21.Jobs) != 9 {
		t.Errorf("Q21 has %d jobs, want 9", len(q21.Jobs))
	}
	if _, err := boedag.TPCHQuery(0, schema); err == nil {
		t.Error("Q0 accepted")
	}
	if got := boedag.KMeans(boedag.DefaultKMeans()); len(got.Jobs) != 6 {
		t.Errorf("KMeans jobs = %d", len(got.Jobs))
	}
	if got := boedag.PageRank(boedag.DefaultPageRank()); len(got.Jobs) != 4 {
		t.Errorf("PageRank jobs = %d", len(got.Jobs))
	}
	if got := boedag.WebAnalytics(boedag.GB); len(got.Jobs) != 4 {
		t.Errorf("WebAnalytics jobs = %d", len(got.Jobs))
	}
	if got := boedag.Chain("c", boedag.WordCount(boedag.GB), boedag.TeraSort(boedag.GB)); len(got.Jobs) != 2 {
		t.Errorf("Chain jobs = %d", len(got.Jobs))
	}
}

func TestPublicProfilesAndBaselines(t *testing.T) {
	spec := boedag.PaperCluster()
	flow := boedag.Single(boedag.TeraSort(5 * boedag.GB))
	res, err := boedag.NewSimulator(spec, boedag.SimOptions{Seed: 3}).Run(flow)
	if err != nil {
		t.Fatal(err)
	}
	profs := boedag.CaptureProfiles(res)

	var buf bytes.Buffer
	if err := profs.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := boedag.LoadProfiles(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replay := boedag.NewProfileReplay(back)
	d, err := replay.TaskTime("TS", boedag.Map, 132)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Error("replay returned zero")
	}

	var e boedag.Ernest
	err = e.Fit([]boedag.ErnestTrainingPoint{
		{Parallelism: 1, TaskTime: 10 * time.Second},
		{Parallelism: 4, TaskTime: 5 * time.Second},
		{Parallelism: 16, TaskTime: 4 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Predict(8); err != nil {
		t.Fatal(err)
	}
}

func TestPublicRenderers(t *testing.T) {
	spec := boedag.PaperCluster()
	flow := boedag.Single(boedag.WordCount(2 * boedag.GB))
	res, err := boedag.NewSimulator(spec, boedag.SimOptions{Seed: 1}).Run(flow)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	boedag.RenderGantt(&sb, res)
	if !strings.Contains(sb.String(), "WC/map") {
		t.Error("Gantt render missing stage")
	}
}

func TestDRFParallelismFacade(t *testing.T) {
	spec := boedag.PaperCluster()
	got := boedag.DRFParallelism(spec, []boedag.SchedRequest{
		{JobID: "a", MemoryMB: 1024, VCores: 1},
		{JobID: "b", MemoryMB: 1024, VCores: 1},
	})
	if got["a"] != 66 || got["b"] != 66 {
		t.Errorf("DRFParallelism = %v", got)
	}
}

// TestPublicOfflineCalibration drives the trace-driven calibration API
// against the committed probe-session fixture: a recorded trace alone
// recovers the cluster that produced it.
func TestPublicOfflineCalibration(t *testing.T) {
	cal, err := boedag.CalibrateFromTrace("internal/calibrate/testdata/probe_session.trace.json")
	if err != nil {
		t.Fatal(err)
	}
	if cal.Nodes != 3 || cal.Slots != 6 {
		t.Fatalf("recovered session shape %d nodes/%d slots, want 3/6", cal.Nodes, cal.Slots)
	}
	// The fixture's cluster has 50 MB/s cores (see goldenSpec in
	// internal/calibrate); offline recovery lands within a few percent.
	got := float64(cal.CoreThroughput) / float64(50*boedag.MB)
	if got < 0.95 || got > 1.05 {
		t.Errorf("recovered core throughput %v, want ≈ 50MB/s", cal.CoreThroughput)
	}
	var report bytes.Buffer
	if err := cal.WriteReport(&report); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.String(), "samples") {
		t.Errorf("report lacks confidence info:\n%s", report.String())
	}
}

func TestSizeConstants(t *testing.T) {
	if boedag.GB != 1<<30 || boedag.MB != 1<<20 || boedag.KB != 1<<10 || boedag.TB != 1<<40 {
		t.Error("size constants wrong")
	}
	if boedag.MBps != boedag.Rate(boedag.MB) {
		t.Error("MBps wrong")
	}
}
