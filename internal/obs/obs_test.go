package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestNopTracerDisabled(t *testing.T) {
	if Nop.Enabled() {
		t.Error("Nop tracer reports enabled")
	}
	Nop.Emit(Event{Type: EvTaskFinish}) // must not panic
	var o Options
	if o.TracerOn() || o.MetricsOn() {
		t.Error("zero Options not fully disabled")
	}
}

func TestRecorderRoundTrip(t *testing.T) {
	r := NewRecorder()
	if !r.Enabled() {
		t.Fatal("recorder not enabled")
	}
	r.Emit(Event{Type: EvTaskStart, Job: "j1", Task: 0, Time: 1})
	r.Emit(Event{Type: EvTaskFinish, Job: "j1", Task: 0, Time: 1, Dur: 2})
	r.Emit(Event{Type: EvStateOpen, Seq: 1, Time: 0})
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if got := r.ByType(EvTaskFinish); len(got) != 1 || got[0].Dur != 2 {
		t.Errorf("ByType(EvTaskFinish) = %+v", got)
	}
	evs := r.Events()
	evs[0].Job = "mutated"
	if r.Events()[0].Job != "j1" {
		t.Error("Events() does not copy")
	}
	r.Reset()
	if r.Len() != 0 {
		t.Errorf("Len after Reset = %d", r.Len())
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Emit(Event{Type: EvEstimatorIter, Seq: i})
			}
		}()
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Errorf("Len = %d, want 800", r.Len())
	}
}

func TestEventTypeStrings(t *testing.T) {
	types := []EventType{
		EvJobSubmit, EvStageStart, EvStageFinish, EvTaskStart, EvTaskFinish,
		EvTaskRetry, EvSubStageFinish, EvStateOpen, EvStateClose,
		EvAllocGrant, EvEstimatorIter, EvEstimatorState,
		EvPoolJob, EvRunStart, EvRequest,
	}
	seen := make(map[string]bool)
	for _, tt := range types {
		s := tt.String()
		if s == "" || strings.HasPrefix(s, "event(") {
			t.Errorf("EventType %d has no name", tt)
		}
		if seen[s] {
			t.Errorf("duplicate event name %q", s)
		}
		seen[s] = true
	}
	if !strings.HasPrefix(EventType(200).String(), "event(") {
		t.Error("unknown event type should fall back to event(N)")
	}
}

func TestWriteSummary(t *testing.T) {
	var sb strings.Builder
	WriteSummary(&sb, nil)
	if !strings.Contains(sb.String(), "no events") {
		t.Errorf("empty summary = %q", sb.String())
	}

	events := []Event{
		{Type: EvTaskFinish, Job: "j1", Stage: "map", Task: 0, Time: 1, Dur: 10},
		{Type: EvTaskFinish, Job: "j1", Stage: "map", Task: 1, Time: 2, Dur: 12},
		{Type: EvTaskRetry, Job: "j1", Stage: "map", Task: 1, Time: 5},
		{Type: EvStateClose, Seq: 1, Time: 0, Dur: 14, Detail: "j1/map", Resource: "cpu", Value: 0.9},
	}
	sb.Reset()
	WriteSummary(&sb, events)
	out := sb.String()
	for _, want := range []string{"4 events", "task_finish", "j1", "2 tasks", "1 retries", "state  1", "cpu"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
