// Package trace renders simulation results and estimated plans as text:
// Gantt-style task execution plans (the paper's Figure 1), stage
// timelines, and state breakdowns. Everything writes to an io.Writer so
// commands, examples and tests share the same rendering.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"boedag/internal/simulator"
	"boedag/internal/statemodel"
)

// ganttWidth is the character width of the rendered time axis.
const ganttWidth = 72

// Gantt renders each job stage of a simulation result as a horizontal
// bar on a shared time axis, with state boundaries marked beneath — a
// textual rendition of the paper's Figure 1 task execution plan.
func Gantt(w io.Writer, res *simulator.Result) {
	if res.Makespan <= 0 {
		fmt.Fprintln(w, "(empty result)")
		return
	}
	total := res.Makespan.Seconds()
	scale := func(t time.Duration) int {
		p := int(t.Seconds() / total * ganttWidth)
		if p < 0 {
			p = 0
		}
		if p > ganttWidth {
			p = ganttWidth
		}
		return p
	}

	fmt.Fprintf(w, "%s — makespan %.1fs\n", res.Workflow, total)
	stages := append([]simulator.StageRecord(nil), res.Stages...)
	sort.Slice(stages, func(i, j int) bool {
		if stages[i].Start != stages[j].Start {
			return stages[i].Start < stages[j].Start
		}
		return label(stages[i]) < label(stages[j])
	})
	nameW := 0
	for _, s := range stages {
		if n := len(label(s)); n > nameW {
			nameW = n
		}
	}
	for _, s := range stages {
		start, end := scale(s.Start), scale(s.End)
		if end <= start {
			end = start + 1
		}
		bar := strings.Repeat(" ", start) +
			strings.Repeat("█", end-start) +
			strings.Repeat(" ", ganttWidth-end)
		fmt.Fprintf(w, "  %-*s |%s| %6.1fs Δ=%d %s\n",
			nameW, label(s), bar, s.Duration().Seconds(), s.MaxParallelism, s.Bottleneck)
	}
	if len(res.States) > 0 {
		marks := []rune(strings.Repeat(" ", ganttWidth+1))
		for _, st := range res.States {
			p := scale(st.Start)
			if p <= ganttWidth {
				marks[p] = '^'
			}
		}
		fmt.Fprintf(w, "  %-*s |%s|\n", nameW, "states", string(marks))
		for _, st := range res.States {
			fmt.Fprintf(w, "    state %d [%6.1fs .. %6.1fs] %s — bound on %s (%.0f%%)\n",
				st.Seq, st.Start.Seconds(), st.End.Seconds(), strings.Join(st.Running, ", "),
				st.DominantResource(), 100*st.Utilization[st.DominantResource()])
		}
	}
}

func label(s simulator.StageRecord) string { return s.Job + "/" + s.Stage.String() }

// Plan renders an estimated execution plan in the same layout as Gantt,
// so a prediction and its ground truth can be compared side by side.
func Plan(w io.Writer, plan *statemodel.Plan) {
	if plan.Makespan <= 0 {
		fmt.Fprintln(w, "(empty plan)")
		return
	}
	total := plan.Makespan.Seconds()
	scale := func(t time.Duration) int {
		p := int(t.Seconds() / total * ganttWidth)
		if p < 0 {
			p = 0
		}
		if p > ganttWidth {
			p = ganttWidth
		}
		return p
	}
	fmt.Fprintf(w, "%s — estimated makespan %.1fs\n", plan.Workflow, total)
	stages := append([]statemodel.StageEstimate(nil), plan.Stages...)
	sort.Slice(stages, func(i, j int) bool {
		if stages[i].Start != stages[j].Start {
			return stages[i].Start < stages[j].Start
		}
		return stages[i].Job < stages[j].Job
	})
	nameW := 0
	for _, s := range stages {
		if n := len(s.Job + "/" + s.Stage.String()); n > nameW {
			nameW = n
		}
	}
	for _, s := range stages {
		start, end := scale(s.Start), scale(s.End)
		if end <= start {
			end = start + 1
		}
		bar := strings.Repeat(" ", start) +
			strings.Repeat("░", end-start) +
			strings.Repeat(" ", ganttWidth-end)
		fmt.Fprintf(w, "  %-*s |%s| %6.1fs Δ=%d task=%.1fs\n",
			nameW, s.Job+"/"+s.Stage.String(), bar,
			s.Duration().Seconds(), s.Parallelism, s.TaskTime.Seconds())
	}
	for _, st := range plan.States {
		fmt.Fprintf(w, "    state %d [%6.1fs .. %6.1fs] %s\n",
			st.Seq, st.Start.Seconds(), st.End.Seconds(), strings.Join(st.Running, ", "))
	}
}

// TaskWaves prints the per-wave task timing of one job stage: useful to
// inspect how task times drift across states (the Figure 1 phenomenon —
// 27 s, 24 s, 20 s for job 2's maps).
func TaskWaves(w io.Writer, res *simulator.Result, job string, stage fmt.Stringer) {
	tasks := res.Tasks
	var sel []simulator.TaskRecord
	for _, t := range tasks {
		if t.Job == job && t.Stage.String() == stage.String() {
			sel = append(sel, t)
		}
	}
	if len(sel) == 0 {
		fmt.Fprintf(w, "no tasks for %s/%s\n", job, stage)
		return
	}
	sort.Slice(sel, func(i, j int) bool { return sel[i].Start < sel[j].Start })
	fmt.Fprintf(w, "%s/%s tasks (%d):\n", job, stage, len(sel))
	const maxRows = 20
	step := 1
	if len(sel) > maxRows {
		step = len(sel) / maxRows
	}
	for i := 0; i < len(sel); i += step {
		t := sel[i]
		fmt.Fprintf(w, "  task %4d  start %7.1fs  dur %6.1fs  bound=%s\n",
			t.Index, t.Start.Seconds(), t.Duration().Seconds(), t.Bottleneck)
	}
}
