package boedag

import (
	"boedag/internal/dag"
	"boedag/internal/experiments"
	"boedag/internal/hibench"
	"boedag/internal/tpch"
	"boedag/internal/units"
)

// TPC-H (the paper's query workload, §V-A: 80 GB over 8 tables).
type (
	// TPCHSchema is a TPC-H instance at a scale factor.
	TPCHSchema = tpch.Schema
	// TPCHTable names one of the eight base tables.
	TPCHTable = tpch.Table
)

// PaperTPCHSchema returns the paper's 80 GB instance.
func PaperTPCHSchema() TPCHSchema { return tpch.PaperSchema() }

// TPCHQuery compiles TPC-H query q (1..22) to a DAG workflow of
// MapReduce jobs, as Hive's planner would.
func TPCHQuery(q int, schema TPCHSchema) (*Workflow, error) { return tpch.Query(q, schema) }

// TPCHNumQueries is 22.
const TPCHNumQueries = tpch.NumQueries

// HiBench analytics workloads (§V-A: huge data sets).
type (
	// KMeansConfig sizes a KMeans workflow.
	KMeansConfig = hibench.KMeansConfig
	// PageRankConfig sizes a PageRank workflow.
	PageRankConfig = hibench.PageRankConfig
)

// KMeans builds the HiBench-style KMeans DAG (iterations + classify).
func KMeans(cfg KMeansConfig) *Workflow { return hibench.KMeans(cfg) }

// PageRank builds the HiBench-style PageRank DAG (init + iterations).
func PageRank(cfg PageRankConfig) *Workflow { return hibench.PageRank(cfg) }

// DefaultKMeans matches HiBench's huge profile (20 GB, 5 iterations).
func DefaultKMeans() KMeansConfig { return hibench.DefaultKMeans() }

// DefaultPageRank matches HiBench's huge profile (5 GB edges, 3 rounds).
func DefaultPageRank() PageRankConfig { return hibench.DefaultPageRank() }

// WebAnalytics builds the paper's Figure 1 motivating DAG: four jobs over
// a page-view log whose parallel middle jobs make task times drift with
// the workflow state.
func WebAnalytics(logBytes units.Bytes) *dag.Workflow {
	return experiments.WebAnalytics(logBytes)
}

// Additional HiBench workloads (beyond the paper's KMeans and PageRank).
var (
	// HiBenchSort is the Sort micro-benchmark profile.
	HiBenchSort = hibench.Sort
	// HiBenchAggregation is the SQL Aggregation scan profile.
	HiBenchAggregation = hibench.Aggregation
	// HiBenchJoin is the two-job SQL Join workflow.
	HiBenchJoin = hibench.Join
	// HiBenchBayes is the three-job naive-Bayes training workflow.
	HiBenchBayes = hibench.Bayes
)

// BayesConfig sizes the Bayes workflow.
type BayesConfig = hibench.BayesConfig

// LoadWorkflowSpec parses a JSON workflow specification (the format the
// dagsim/boepredict -spec flag consumes).
var LoadWorkflowSpec = dag.LoadWorkflow

// SaveWorkflowSpec writes a workflow as a JSON spec that
// LoadWorkflowSpec round-trips.
var SaveWorkflowSpec = dag.SaveWorkflow
