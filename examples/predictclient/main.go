// Predictclient demonstrates the prediction daemon's client protocol: it
// starts a boedagd-equivalent server in-process on an ephemeral port
// (swap in -addr to talk to a real daemon), submits a batch of what-if
// scenarios — the paper's micro benchmarks at growing input sizes — and
// tabulates the predicted makespans, then asks for the server's cache
// metrics to show the duplicated scenarios coalesced.
//
// Run it with:
//
//	go run ./examples/predictclient
//	go run ./examples/predictclient -addr localhost:8080   # against boedagd
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"

	"boedag"
)

func main() {
	addr := flag.String("addr", "", "talk to a running boedagd at this address instead of starting one in-process")
	flag.Parse()

	base := *addr
	if base == "" {
		// No daemon given: run one in-process, exactly as cmd/boedagd would.
		srv, err := boedag.NewServer(boedag.ServerConfig{})
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ctx, ln) }()
		defer func() {
			cancel()
			if err := <-done; err != nil {
				log.Fatal(err)
			}
		}()
		base = ln.Addr().String()
		fmt.Printf("started in-process prediction server on %s\n\n", base)
	}

	// A what-if sweep: Word Count and TeraSort at growing input sizes.
	// The 5 GB scenarios appear twice — the server answers the duplicates
	// from its coalescing cache.
	var scenarios []string
	for _, gb := range []int{5, 20, 100, 5} {
		scenarios = append(scenarios,
			fmt.Sprintf(`{"workflow": "wc", "options": {"micro_gb": %d}}`, gb),
			fmt.Sprintf(`{"workflow": "ts", "options": {"micro_gb": %d}}`, gb))
	}
	body := `{"scenarios": [` + strings.Join(scenarios, ",") + `]}`

	resp, err := http.Post("http://"+base+"/v1/batch", "application/json",
		strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("batch request failed: %s", resp.Status)
	}
	var batch struct {
		Results []struct {
			Estimate *struct {
				Workflow  string  `json:"workflow"`
				MakespanS float64 `json:"makespan_s"`
			} `json:"estimate"`
			Error *struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		log.Fatal(err)
	}

	fmt.Println("predicted makespans (batch results, input order):")
	for i, r := range batch.Results {
		switch {
		case r.Error != nil:
			fmt.Printf("  %2d  ERROR %s: %s\n", i, r.Error.Code, r.Error.Message)
		default:
			fmt.Printf("  %2d  %-6s %8.1fs\n", i, r.Estimate.Workflow, r.Estimate.MakespanS)
		}
	}

	// The metrics endpoint shows the coalescing at work.
	mresp, err := http.Get("http://" + base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer mresp.Body.Close()
	var metrics struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserver ran the estimator %d times for %d scenarios "+
		"(%d answered from the coalescing cache)\n",
		metrics.Counters["estimates_computed"], len(batch.Results),
		metrics.Counters["estimate_cache_hits"])
}
