package calibrate

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"boedag/internal/cluster"
	"boedag/internal/obs"
	"boedag/internal/workload"
)

// editTrace round-trips a recorded trace through a JSON transform,
// letting edge-case tests corrupt one aspect of an otherwise valid
// session.
func editTrace(t *testing.T, raw []byte, edit func(events []map[string]any) []map[string]any) []byte {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	evs, _ := doc["traceEvents"].([]any)
	maps := make([]map[string]any, 0, len(evs))
	for _, e := range evs {
		m, ok := e.(map[string]any)
		if !ok {
			t.Fatalf("trace event is not an object: %v", e)
		}
		maps = append(maps, m)
	}
	edited := edit(maps)
	out := make([]any, len(edited))
	for i, m := range edited {
		out[i] = m
	}
	doc["traceEvents"] = out
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func dropEvents(keep func(m map[string]any) bool) func([]map[string]any) []map[string]any {
	return func(events []map[string]any) []map[string]any {
		var out []map[string]any
		for _, m := range events {
			if keep(m) {
				out = append(out, m)
			}
		}
		return out
	}
}

func argsOf(m map[string]any) map[string]any {
	a, _ := m["args"].(map[string]any)
	return a
}

func TestParseRejectsMalformedInput(t *testing.T) {
	cases := []struct {
		name, input string
	}{
		{"empty", ""},
		{"truncated", `{"traceEvents":[{"name":"run","cat":"meta"`},
		{"not json", "makespan: 14.1s"},
		{"no events", `{"traceEvents":[]}`},
		{"wrong shape", `[1,2,3]`},
		{"no run metadata", `{"traceEvents":[{"name":"map[0]","cat":"task","ph":"X","ts":0,"dur":1,"args":{"job":"j","stage":"map","task":0}}]}`},
		{"task span without args", `{"traceEvents":[{"name":"map[0]","cat":"task","ph":"X","ts":0,"dur":1}]}`},
		{"task span without index", `{"traceEvents":[{"name":"map[0]","cat":"task","ph":"X","ts":0,"dur":1,"args":{"job":"j","stage":"map"}}]}`},
		{"negative task index", `{"traceEvents":[{"name":"map[0]","cat":"task","ph":"X","ts":0,"dur":1,"args":{"job":"j","stage":"map","task":-2}}]}`},
		{"negative duration", `{"traceEvents":[{"name":"map[0]","cat":"task","ph":"X","ts":0,"dur":-5,"args":{"job":"j","stage":"map","task":0}}]}`},
		{"unknown stage", `{"traceEvents":[{"name":"x","cat":"substage","ph":"X","ts":0,"dur":1,"args":{"job":"j","stage":"combine","task":0,"sub":"x"}}]}`},
		{"bad run metadata", `{"traceEvents":[{"name":"run","cat":"meta","ph":"i","ts":0,"args":{"nodes":-1,"slots":0}}]}`},
		{"unknown bytes resource", `{"traceEvents":[{"name":"run","cat":"meta","ph":"i","ts":0,"args":{"nodes":1,"slots":1}},{"name":"map","cat":"substage","ph":"X","ts":0,"dur":1,"args":{"job":"j","stage":"map","task":0,"sub":"map","bytes":{"gpu":5}}}]}`},
		{"negative bytes", `{"traceEvents":[{"name":"run","cat":"meta","ph":"i","ts":0,"args":{"nodes":1,"slots":1}},{"name":"map","cat":"substage","ph":"X","ts":0,"dur":1,"args":{"job":"j","stage":"map","task":0,"sub":"map","bytes":{"cpu":-7}}}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := ParseChromeTrace(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("parse accepted %q: %+v", tc.name, s)
			}
		})
	}
}

// TestMissingProbeNamesProbe: a trace that recorded only four of the
// five probes must fail calibration with an error naming the absent one.
func TestMissingProbeNamesProbe(t *testing.T) {
	raw := recordProbeTrace(t, cluster.PaperCluster())
	noNet := editTrace(t, raw, dropEvents(func(m map[string]any) bool {
		if a := argsOf(m); a != nil {
			if j, _ := a["job"].(string); j == ProbeNetwork {
				return false
			}
			if w, _ := a["workflow"].(string); w == ProbeNetwork {
				return false
			}
		}
		name, _ := m["name"].(string)
		return !strings.Contains(name, ProbeNetwork)
	}))
	sess, err := ParseChromeTrace(bytes.NewReader(noNet))
	if err != nil {
		t.Fatal(err)
	}
	_, err = FromSession(sess)
	if err == nil || !strings.Contains(err.Error(), ProbeNetwork) {
		t.Fatalf("err = %v, want mention of %s", err, ProbeNetwork)
	}
}

// TestReduceTasksWithoutSubStages: task spans present but sub-stage
// spans stripped (a filtered or partial export) must produce the
// shuffle-specific error, not a wrong estimate.
func TestReduceTasksWithoutSubStages(t *testing.T) {
	raw := recordProbeTrace(t, cluster.PaperCluster())
	noSubs := editTrace(t, raw, dropEvents(func(m map[string]any) bool {
		cat, _ := m["cat"].(string)
		return cat != "substage"
	}))
	sess, err := ParseChromeTrace(bytes.NewReader(noSubs))
	if err != nil {
		t.Fatal(err)
	}
	_, err = FromSession(sess)
	if err == nil || !strings.Contains(err.Error(), "shuffle") {
		t.Fatalf("err = %v, want shuffle sub-stage error", err)
	}
}

// TestZeroByteSamplesSkipped: sub-stage spans whose byte counts are
// missing or zero contribute nothing to confidence — no NaN, no sample —
// while the duration-based estimate still works.
func TestZeroByteSamplesSkipped(t *testing.T) {
	raw := recordProbeTrace(t, cluster.PaperCluster())
	stripped := editTrace(t, raw, func(events []map[string]any) []map[string]any {
		for _, m := range events {
			if a := argsOf(m); a != nil {
				delete(a, "bytes")
			}
		}
		return events
	})
	sess, err := ParseChromeTrace(bytes.NewReader(stripped))
	if err != nil {
		t.Fatal(err)
	}
	cal, err := FromSession(sess)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range cluster.Resources() {
		cf := cal.Confidence[r]
		if cf.Samples != 0 || cf.Implied != 0 || cf.Spread != 0 {
			t.Errorf("%s confidence = %+v, want zero (no byte counts)", r, cf)
		}
	}
	if cal.DiskReadPool <= 0 {
		t.Error("duration-based estimate lost without byte counts")
	}
	var buf bytes.Buffer
	if err := cal.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "duration-only") {
		t.Errorf("report does not flag byte-free trace:\n%s", buf.String())
	}
}

// TestSkewedTraceFlagged: a session recorded with skew enabled is
// calibrated from medians and the report says so.
func TestSkewedTraceFlagged(t *testing.T) {
	raw := recordProbeTrace(t, cluster.PaperCluster())
	skewed := editTrace(t, raw, func(events []map[string]any) []map[string]any {
		for _, m := range events {
			if cat, _ := m["cat"].(string); cat == "meta" {
				argsOf(m)["skew"] = true
			}
		}
		return events
	})
	sess, err := ParseChromeTrace(bytes.NewReader(skewed))
	if err != nil {
		t.Fatal(err)
	}
	if !sess.Skewed {
		t.Fatal("session did not pick up skew flag")
	}
	cal, err := FromSession(sess)
	if err != nil {
		t.Fatal(err)
	}
	if !cal.Skewed {
		t.Fatal("calibration lost skew flag")
	}
	var buf bytes.Buffer
	if err := cal.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "median") {
		t.Errorf("skewed report does not mention medians:\n%s", buf.String())
	}
}

// TestTruncatedTraceDropsInFlightTasks: a sub-stage span without its
// enclosing task span (the run was cut off mid-task) is excluded from
// the reconstruction rather than fabricating a zero-length task.
func TestTruncatedTraceDropsInFlightTasks(t *testing.T) {
	raw := recordProbeTrace(t, cluster.PaperCluster())
	// Drop the task spans (not sub-stages) of half the read probe's tasks.
	cut := editTrace(t, raw, dropEvents(func(m map[string]any) bool {
		cat, _ := m["cat"].(string)
		if cat != "task" {
			return true
		}
		a := argsOf(m)
		if j, _ := a["job"].(string); j != ProbeDiskRead {
			return true
		}
		idx, _ := a["task"].(float64)
		return int(idx)%2 == 0
	}))
	sess, err := ParseChromeTrace(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Result(ProbeDiskRead)
	if err != nil {
		t.Fatal(err)
	}
	full := cluster.PaperCluster().TotalSlots()
	if got := len(res.TasksOf(ProbeDiskRead, workload.Map)); got != (full+1)/2 {
		t.Errorf("reconstructed %d tasks, want %d (in-flight dropped)", got, (full+1)/2)
	}
	// The estimate still lands within 1%: the surviving tasks are
	// homogeneous, so the median is unmoved.
	cal, err := FromSession(sess)
	if err != nil {
		t.Fatal(err)
	}
	spec := cluster.PaperCluster()
	want := float64(spec.TotalCapacity(cluster.DiskRead))
	if got := float64(cal.DiskReadPool); got < want*0.99 || got > want*1.01 {
		t.Errorf("disk read pool from truncated trace = %v, want ≈ %v", cal.DiskReadPool, want)
	}
}

// TestSessionResultUnknownJob lists what the session does hold, guiding
// an operator who pointed the tool at the wrong trace.
func TestSessionResultUnknownJob(t *testing.T) {
	raw := recordProbeTrace(t, cluster.PaperCluster())
	sess, err := ParseChromeTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sess.Result("wordcount")
	if err == nil || !strings.Contains(err.Error(), ProbeOverhead) {
		t.Fatalf("err = %v, want listing of recorded jobs", err)
	}
}

// TestDemandNamesMatchClusterResources pins the cross-package schema:
// the obs byte-count keys must be exactly the cluster resource names, in
// index order, or offline calibration cannot map them back.
func TestDemandNamesMatchClusterResources(t *testing.T) {
	if obs.NumDemandResources != cluster.NumResources {
		t.Fatalf("obs.NumDemandResources = %d, cluster.NumResources = %d",
			obs.NumDemandResources, cluster.NumResources)
	}
	for _, r := range cluster.Resources() {
		if got := obs.DemandResourceNames[r]; got != r.String() {
			t.Errorf("DemandResourceNames[%d] = %q, want %q", int(r), got, r.String())
		}
	}
}
