package evalpool

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"boedag/internal/obs"
)

// Cache memoizes the results of deterministic computations by canonical
// key (see signature.go). It is safe for concurrent use and
// single-flight: when several workers request the same key at once, the
// computation runs exactly once and everyone shares the result. Errors
// are cached alongside values — a deterministic computation that failed
// once will fail identically again. Panics are not cached: the panic is
// re-thrown to the caller that ran the computation, concurrent waiters
// get an error, and the entry is dropped so a later request retries.
type Cache[V any] struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry[V]
	// hits/misses are always tracked; the obs counters mirror them when a
	// registry is attached with WithMetrics.
	hits, misses atomic.Int64
	hitC, missC  *obs.Counter
}

type cacheEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// NewCache returns an empty cache.
func NewCache[V any]() *Cache[V] {
	return &Cache[V]{entries: make(map[string]*cacheEntry[V])}
}

// WithMetrics exports the cache's hit/miss counters into the metrics
// registry as <name>_hits / <name>_misses and returns the cache.
func (c *Cache[V]) WithMetrics(reg *obs.Registry, name string) *Cache[V] {
	if reg != nil {
		c.hitC = reg.Counter(name + "_hits")
		c.missC = reg.Counter(name + "_misses")
	}
	return c
}

// Do returns the cached result for key, computing it on first request.
// Concurrent callers with the same key block until the single in-flight
// computation finishes.
func (c *Cache[V]) Do(key string, compute func() (V, error)) (V, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry[V]{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
		if c.hitC != nil {
			c.hitC.Inc()
		}
	} else {
		c.misses.Add(1)
		if c.missC != nil {
			c.missC.Inc()
		}
	}
	var panicked any
	e.once.Do(func() {
		defer func() {
			if p := recover(); p != nil {
				panicked = p
				e.err = fmt.Errorf("evalpool: computation panicked: %v", p)
				c.mu.Lock()
				delete(c.entries, key)
				c.mu.Unlock()
			}
		}()
		e.val, e.err = compute()
	})
	if panicked != nil {
		panic(panicked)
	}
	return e.val, e.err
}

// DoContext is Do with a deadline on the wait, not on the work: when ctx
// ends while the key's single-flight computation is still running —
// whether this caller started it or joined another's — DoContext returns
// ctx's error immediately and the computation keeps going in the
// background, so its result still lands in the cache for the next
// request. Hit/miss accounting is identical to Do.
func (c *Cache[V]) DoContext(ctx context.Context, key string, compute func() (V, error)) (V, error) {
	var zero V
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	type outcome struct {
		val      V
		err      error
		panicked any
	}
	done := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				done <- outcome{panicked: p}
			}
		}()
		v, err := c.Do(key, compute)
		done <- outcome{val: v, err: err}
	}()
	select {
	case o := <-done:
		if o.panicked != nil {
			// Re-throw in the caller's goroutine so its recovery middleware
			// (not this helper goroutine) owns the panic.
			panic(o.panicked)
		}
		return o.val, o.err
	case <-ctx.Done():
		return zero, ctx.Err()
	}
}

// Len reports how many distinct keys are cached (including in-flight).
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns how many Do calls hit respectively missed the cache.
func (c *Cache[V]) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
