// Package cluster describes the computing resources a DAG workflow runs
// on: nodes with CPU cores, disks, memory, and network links. All cost
// models in this repository consume the capacities declared here; the
// discrete-event simulator shares them fairly among running tasks.
//
// The default configuration, PaperCluster, reproduces the hardware of the
// paper's evaluation (§V-A): eleven servers, each with 6 physical cores at
// 2.4 GHz, two 7.2k-RPM disks of 500 GB, 32 GB of memory, and a 1 Gbps
// Ethernet switch.
package cluster

import (
	"errors"
	"fmt"

	"boedag/internal/units"
)

// Resource identifies one class of preemptable capacity on a node. The
// paper's resource usage model (§III-A2) treats disk and network as always
// preemptable and CPU as preemptable once tasks outnumber cores; memory is
// not preemptable (it gates admission instead, via the scheduler).
type Resource int

const (
	// CPU is per-core tuple-processing bandwidth.
	CPU Resource = iota
	// DiskRead is the aggregate sequential read bandwidth of a node's disks.
	DiskRead
	// DiskWrite is the aggregate sequential write bandwidth of a node's disks.
	DiskWrite
	// Network is the node's NIC bandwidth (full duplex modelled as one pool,
	// matching the paper's single "transfer" operation).
	Network
	numResources
)

// NumResources is the count of resource classes, for sizing dense arrays.
const NumResources = int(numResources)

// String returns the conventional short name for the resource.
func (r Resource) String() string {
	switch r {
	case CPU:
		return "cpu"
	case DiskRead:
		return "disk-read"
	case DiskWrite:
		return "disk-write"
	case Network:
		return "network"
	}
	return fmt.Sprintf("resource(%d)", int(r))
}

// Resources lists every resource class, in declaration order.
func Resources() []Resource {
	return []Resource{CPU, DiskRead, DiskWrite, Network}
}

// NodeSpec declares the capacities of one server.
type NodeSpec struct {
	// Cores is the number of physical CPU cores available to tasks.
	Cores int
	// CoreThroughput is the tuple-processing bandwidth of a single core for
	// a unit-cost computation. Job profiles scale it by their per-byte CPU
	// cost factor.
	CoreThroughput units.Rate
	// Disks is the number of independent disk spindles.
	Disks int
	// DiskReadRate and DiskWriteRate are per-spindle sequential bandwidths.
	DiskReadRate  units.Rate
	DiskWriteRate units.Rate
	// NetworkRate is the NIC line rate.
	NetworkRate units.Rate
	// MemoryMB is the physical memory the scheduler may hand to containers.
	MemoryMB int
}

// Validate reports the first implausible capacity, if any.
func (n NodeSpec) Validate() error {
	switch {
	case n.Cores <= 0:
		return errors.New("cluster: node needs at least one core")
	case n.CoreThroughput <= 0:
		return errors.New("cluster: core throughput must be positive")
	case n.Disks <= 0:
		return errors.New("cluster: node needs at least one disk")
	case n.DiskReadRate <= 0 || n.DiskWriteRate <= 0:
		return errors.New("cluster: disk rates must be positive")
	case n.NetworkRate <= 0:
		return errors.New("cluster: network rate must be positive")
	case n.MemoryMB <= 0:
		return errors.New("cluster: memory must be positive")
	}
	return nil
}

// Capacity returns the node's aggregate capacity for one resource class.
// For CPU it is cores × per-core throughput: the fluid pool that the
// progressive-filling allocator shares among tasks (a single task is still
// capped to one core's worth by the per-task ceiling, see PerTaskCap).
func (n NodeSpec) Capacity(r Resource) units.Rate {
	switch r {
	case CPU:
		return n.CoreThroughput * units.Rate(n.Cores)
	case DiskRead:
		return n.DiskReadRate * units.Rate(n.Disks)
	case DiskWrite:
		return n.DiskWriteRate * units.Rate(n.Disks)
	case Network:
		return n.NetworkRate
	}
	return 0
}

// PerTaskCap returns the most of resource r a single task can use even
// with no contention. CPU is capped at one core (a task is one thread in
// the paper's execution model); disks and network allow a single stream to
// saturate the device.
func (n NodeSpec) PerTaskCap(r Resource) units.Rate {
	if r == CPU {
		return n.CoreThroughput
	}
	return n.Capacity(r)
}

// Spec declares a whole cluster. Nodes are homogeneous, as in the paper's
// testbed; heterogeneous clusters can be modelled by running the models
// per node group.
type Spec struct {
	Nodes int
	Node  NodeSpec
	// SlotsPerNode caps simultaneously running tasks per node (the classic
	// MapReduce "task slots"); 0 means cores-bound only.
	SlotsPerNode int
}

// Validate reports the first invalid field, if any.
func (s Spec) Validate() error {
	if s.Nodes <= 0 {
		return errors.New("cluster: need at least one node")
	}
	if s.SlotsPerNode < 0 {
		return errors.New("cluster: slots per node cannot be negative")
	}
	return s.Node.Validate()
}

// TotalCapacity returns the cluster-wide capacity of a resource class.
func (s Spec) TotalCapacity(r Resource) units.Rate {
	return s.Node.Capacity(r) * units.Rate(s.Nodes)
}

// TotalSlots returns the cluster-wide cap on simultaneously running tasks.
func (s Spec) TotalSlots() int {
	per := s.SlotsPerNode
	if per == 0 {
		per = s.Node.Cores
	}
	return per * s.Nodes
}

// TotalCores returns the cluster-wide core count.
func (s Spec) TotalCores() int { return s.Node.Cores * s.Nodes }

// TotalMemoryMB returns the cluster-wide schedulable memory.
func (s Spec) TotalMemoryMB() int { return s.Node.MemoryMB * s.Nodes }

// PaperCluster returns the evaluation cluster of the paper (§V-A): eleven
// identical servers — 6 cores at 2.4 GHz, 2 × 500 GB 7.2k-RPM disks, 32 GB
// RAM — on a 1 Gbps switch. Derived throughputs follow the figures the
// paper itself uses in its worked example (§III-A3): ~125 MB/s network
// line rate, ~100 MB/s sequential bandwidth per 7.2k spindle, and a
// per-core processing bandwidth of 50 MB/s for a unit-cost computation.
// SlotsPerNode is 12 — twice the physical cores, the classic Hadoop
// over-subscription that lets the paper sweep the degree of parallelism
// to 12 tasks per node and observe the CPU saturating past 6.
func PaperCluster() Spec {
	return Spec{
		Nodes:        11,
		SlotsPerNode: 12,
		Node: NodeSpec{
			Cores:          6,
			CoreThroughput: 50 * units.MBps,
			Disks:          2,
			DiskReadRate:   100 * units.MBps,
			DiskWriteRate:  100 * units.MBps,
			NetworkRate:    125 * units.MBps,
			MemoryMB:       32 * 1024,
		},
	}
}

// SingleNode returns a one-node cluster with the given spec, used by the
// worked example of the paper (Figure 4) and by unit tests.
func SingleNode(node NodeSpec) Spec {
	return Spec{Nodes: 1, Node: node}
}

// ExampleNode reproduces the node of the paper's Figure 4 worked example:
// aggregate read 500 MB/s, network 100 MB/s, and 50 MB/s of per-core
// compute, with enough cores that five tasks never queue on CPU.
func ExampleNode() NodeSpec {
	return NodeSpec{
		Cores:          8,
		CoreThroughput: 50 * units.MBps,
		Disks:          5,
		DiskReadRate:   100 * units.MBps,
		DiskWriteRate:  100 * units.MBps,
		NetworkRate:    100 * units.MBps,
		MemoryMB:       32 * 1024,
	}
}
