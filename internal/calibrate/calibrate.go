// Package calibrate recovers a cluster's resource throughputs — the θ_X
// constants the BOE model consumes — by running a small set of probe jobs
// with known, isolated bottlenecks and inverting the model. It is the
// cluster-profiling step a deployment performs once before using the cost
// models on new hardware, analogous to Starfish's profiler or MRTuner's
// system catalogs.
//
// The Runner abstraction accepts any execution backend with the
// simulator's result shape; in this repository the simulator plays the
// cluster, which closes the loop: calibrating against the simulated
// PaperCluster recovers the PaperCluster's specification.
package calibrate

import (
	"context"
	"fmt"
	"time"

	"boedag/internal/cluster"
	"boedag/internal/dag"
	"boedag/internal/evalpool"
	"boedag/internal/obs"
	"boedag/internal/simulator"
	"boedag/internal/units"
	"boedag/internal/workload"
)

// Runner executes one job alone on the cluster under calibration, with
// at most slotLimit simultaneous tasks, and returns the measurements.
type Runner func(p workload.JobProfile, slotLimit int) (*simulator.Result, error)

// SimulatorRunner adapts a cluster spec into a Runner backed by the
// discrete-event simulator (skew disabled: probes want clean medians).
// An optional obs.Options attaches observability sinks to every probe
// run, so a calibration session can be traced end to end.
func SimulatorRunner(spec cluster.Spec, observe ...obs.Options) Runner {
	var o obs.Options
	if len(observe) > 0 {
		o = observe[0]
	}
	return func(p workload.JobProfile, slotLimit int) (*simulator.Result, error) {
		sim := simulator.New(spec, simulator.Options{
			Seed:        1,
			DisableSkew: true,
			SlotLimit:   slotLimit,
			Observe:     o,
		})
		return sim.Run(dag.Single(p))
	}
}

// Estimate is the calibrator's output: cluster-wide pool throughputs and
// the per-task launch overhead, ready to populate a cluster.Spec.
type Estimate struct {
	// TaskOverhead is the fixed per-task container launch latency.
	TaskOverhead time.Duration
	// CoreThroughput is one core's unit-cost compute bandwidth.
	CoreThroughput units.Rate
	// DiskReadPool, DiskWritePool and NetworkPool are cluster-wide
	// aggregate bandwidths. DiskWritePool is an effective value: when the
	// write path is faster than the read path the write probe cannot see
	// past the read bottleneck, and the estimate is a lower bound.
	DiskReadPool, DiskWritePool, NetworkPool units.Rate
}

// NodeSpec converts the estimate into a per-node specification for a
// homogeneous cluster (single logical disk per node; memory and cores
// must be supplied by the operator, who knows the hardware).
func (e Estimate) NodeSpec(nodes, cores, memoryMB int) cluster.NodeSpec {
	n := units.Rate(nodes)
	return cluster.NodeSpec{
		Cores:          cores,
		CoreThroughput: e.CoreThroughput,
		Disks:          1,
		DiskReadRate:   e.DiskReadPool / n,
		DiskWriteRate:  e.DiskWritePool / n,
		NetworkRate:    e.NetworkPool / n,
		MemoryMB:       memoryMB,
	}
}

// probe sizes: large enough that device time dominates measurement noise,
// small enough to stay quick.
const (
	probeSplit = 256 * units.MB
	tinyCPU    = 0.01
	heavyCPU   = 4.0
)

// Probe job names. Trace-driven calibration identifies probe runs inside
// a recorded session by these names, so they are part of the trace
// schema contract (see DESIGN.md).
const (
	ProbeOverhead  = "cal-overhead"
	ProbeCPU       = "cal-cpu"
	ProbeDiskRead  = "cal-read"
	ProbeDiskWrite = "cal-write"
	ProbeNetwork   = "cal-net"
)

// Probe is one calibration job plus the task concurrency it must run at
// to isolate its resource.
type Probe struct {
	Profile workload.JobProfile
	// Slots is the simultaneous-task limit for the probe run: 1 for the
	// single-task probes, the cluster's full slot count for the
	// pool-saturating ones.
	Slots int
}

// ProbeSuite returns the five probe jobs calibrating a cluster with the
// given total task slots: overhead, CPU, disk read, disk write, network
// — in the order the inversion arithmetic consumes them. The suite is
// also reachable as dagsim workflows (cal-overhead … cal-net), so a
// probe session can be recorded to a Chrome trace and calibrated
// offline.
func ProbeSuite(slots int) []Probe {
	return []Probe{
		// Probe 0 — overhead: a near-empty task is all container launch.
		{workload.JobProfile{
			Name: ProbeOverhead, InputBytes: units.MB, SplitBytes: units.MB,
			MapSelectivity: 0, MapCPUCost: tinyCPU, Replicas: 1,
		}, 1},
		// Probe 1 — CPU: one heavy-compute task; everything else is noise.
		{workload.JobProfile{
			Name: ProbeCPU, InputBytes: probeSplit, SplitBytes: probeSplit,
			MapSelectivity: 0, MapCPUCost: heavyCPU, Replicas: 1,
		}, 1},
		// Probe 2 — disk read: slots parallel scan tasks saturate the pool.
		{workload.JobProfile{
			Name: ProbeDiskRead, InputBytes: probeSplit * units.Bytes(slots), SplitBytes: probeSplit,
			MapSelectivity: 0, MapCPUCost: tinyCPU, Replicas: 1,
		}, slots},
		// Probe 3 — disk write: scan + local identity write; with the read
		// pool known we attribute the slowdown to the write path.
		{workload.JobProfile{
			Name: ProbeDiskWrite, InputBytes: probeSplit * units.Bytes(slots), SplitBytes: probeSplit,
			MapSelectivity: 1, MapCPUCost: tinyCPU, ReduceTasks: 0, Replicas: 1,
		}, slots},
		// Probe 4 — network: an identity shuffle; the copy sub-stage's
		// median isolates the transfer (map output is from page cache).
		{workload.JobProfile{
			Name: ProbeNetwork, InputBytes: probeSplit * units.Bytes(slots), SplitBytes: probeSplit,
			MapSelectivity: 1, ReduceSelectivity: 1, MapCPUCost: tinyCPU, ReduceCPUCost: tinyCPU,
			ReduceTasks: slots, Replicas: 1,
		}, slots},
	}
}

// Options configure how the probe suite executes.
type Options struct {
	// Workers bounds how many probe jobs run concurrently (0 or 1 =
	// serial). The five probes are independent executions — only the
	// inversion arithmetic afterwards chains — so the estimate is
	// identical at any value.
	Workers int
	// Observe attaches observability sinks to the probe pool, emitting a
	// pool_job span per probe.
	Observe obs.Options
}

// Cluster runs the probe suite serially and inverts the BOE relations.
// slots is the cluster's total simultaneous task capacity (used to
// saturate shared pools); nodes is the node count (for the shuffle's
// remote fraction).
func Cluster(run Runner, slots, nodes int) (*Estimate, error) {
	return ClusterWith(run, slots, nodes, Options{})
}

// ClusterWith is Cluster with execution options: the five probe jobs run
// through the evaluation pool, bounded by opt.Workers.
func ClusterWith(run Runner, slots, nodes int, opt Options) (*Estimate, error) {
	if slots <= 0 || nodes <= 0 {
		return nil, fmt.Errorf("calibrate: need positive slots and nodes, got %d/%d", slots, nodes)
	}

	probes := ProbeSuite(slots)
	jobs := make([]func() (*simulator.Result, error), len(probes))
	for i, pr := range probes {
		pr := pr
		jobs[i] = func() (*simulator.Result, error) {
			res, err := run(pr.Profile, pr.Slots)
			if err != nil {
				return nil, fmt.Errorf("calibrate: probe %s: %w", pr.Profile.Name, err)
			}
			return res, nil
		}
	}
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	results, err := evalpool.RunObserved(context.Background(), jobs, evalpool.Options{
		Workers: workers,
		Label:   "calibrate",
		Observe: opt.Observe,
	})
	if err != nil {
		return nil, err
	}

	// Inversion arithmetic: serial, cheap, order-dependent (probes 1–3
	// subtract the overhead probe's launch latency).
	est := &Estimate{}
	t0, err := medianMapTime(results[0], probes[0].Profile.Name)
	if err != nil {
		return nil, err
	}
	est.TaskOverhead = t0

	t1, err := medianMapTime(results[1], probes[1].Profile.Name)
	if err != nil {
		return nil, err
	}
	work := float64(probeSplit) * heavyCPU
	est.CoreThroughput = units.Rate(work / effective(t1, t0))

	t2, err := medianMapTime(results[2], probes[2].Profile.Name)
	if err != nil {
		return nil, err
	}
	est.DiskReadPool = units.Rate(float64(slots) * float64(probeSplit) / effective(t2, t0))

	t3, err := medianMapTime(results[3], probes[3].Profile.Name)
	if err != nil {
		return nil, err
	}
	est.DiskWritePool = units.Rate(float64(slots) * float64(probeSplit) / effective(t3, t0))

	shuffle, err := medianShuffleTime(results[4], probes[4].Profile.Name)
	if err != nil {
		return nil, err
	}
	remote := 1 - 1/float64(nodes)
	perTask := float64(probeSplit) * remote
	if shuffle <= 0 || remote == 0 {
		return nil, fmt.Errorf("calibrate: degenerate network probe (single node?)")
	}
	// The shuffle also writes its input to disk; when the write path sets
	// the measured time the network estimate below is a lower bound. On
	// typical clusters (this one included) the NIC is the slower device
	// and the estimate is exact.
	est.NetworkPool = units.Rate(float64(slots) * perTask / shuffle.Seconds())
	return est, nil
}

// medianMapTime extracts the probe's median map-task duration.
func medianMapTime(res *simulator.Result, job string) (time.Duration, error) {
	s := res.StageOf(job, workload.Map)
	if s == nil || len(s.TaskTimes) == 0 {
		return 0, fmt.Errorf("calibrate: probe %s measured nothing", job)
	}
	return s.MedianTaskTime(), nil
}

// medianShuffleTime extracts the median first-sub-stage (copy) time of
// the job's reduce tasks.
func medianShuffleTime(res *simulator.Result, job string) (time.Duration, error) {
	tasks := res.TasksOf(job, workload.Reduce)
	if len(tasks) == 0 {
		return 0, fmt.Errorf("calibrate: no reduce tasks for %s", job)
	}
	times := make([]time.Duration, 0, len(tasks))
	for _, t := range tasks {
		if len(t.SubStages) > 0 {
			times = append(times, t.SubStages[0])
		}
	}
	if len(times) == 0 {
		return 0, fmt.Errorf("calibrate: no shuffle sub-stages for %s", job)
	}
	sortDurations(times)
	return times[len(times)/2], nil
}

func sortDurations(ts []time.Duration) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

// effective subtracts the launch overhead from a measured task time,
// flooring at a millisecond to avoid dividing by ~zero.
func effective(t, overhead time.Duration) float64 {
	e := (t - overhead).Seconds()
	if e < 1e-3 {
		e = 1e-3
	}
	return e
}
