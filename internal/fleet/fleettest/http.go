package fleettest

import (
	"bytes"
	"io"
	"net/http"
)

// post sends one JSON POST and returns status, body, and headers.
func post(url string, body []byte) (int, []byte, http.Header, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, b, resp.Header, nil
}
